#include "math/bigmod.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/prng.hpp"
#include "math/ntt.hpp"
#include "math/primes.hpp"
#include "math/rns.hpp"

namespace pphe {
namespace {

TEST(BigBarrett, ReduceMatchesDivmod) {
  Prng prng(31);
  const auto primes = generate_ntt_primes(512, 55, 4);
  RnsBase base(primes);
  const BigBarrett bar(base.product());
  for (int i = 0; i < 200; ++i) {
    BigUInt x;
    for (int limb = 0; limb < 6; ++limb) {
      x = (x << 64) + BigUInt(prng.next_u64());
    }
    x = x % (base.product() * base.product());
    EXPECT_EQ(bar.reduce(x), x % base.product());
  }
}

TEST(BigBarrett, ModularOps) {
  const BigUInt q = BigUInt::from_string("1000000007");
  const BigBarrett bar(q);
  EXPECT_EQ(bar.addmod(BigUInt(1000000006), BigUInt(2)), BigUInt(1));
  EXPECT_EQ(bar.submod(BigUInt(1), BigUInt(2)), BigUInt(1000000006));
  EXPECT_EQ(bar.negmod(BigUInt(0)), BigUInt(0));
  EXPECT_EQ(bar.negmod(BigUInt(5)), BigUInt(1000000002));
  EXPECT_EQ(bar.mulmod(BigUInt(123456), BigUInt(654321)),
            (BigUInt(123456) * BigUInt(654321)) % q);
}

TEST(BigBarrett, RejectsTrivialModulus) {
  EXPECT_THROW(BigBarrett(BigUInt(1)), Error);
  EXPECT_THROW(BigBarrett(BigUInt(0)), Error);
}

class BigNttTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BigNttTest, RoundTrip) {
  const std::size_t n = GetParam();
  const auto primes = generate_ntt_primes(n, 35, 3);
  const BigNtt ntt(n, primes);
  Prng prng(n);
  std::vector<BigUInt> a(n);
  for (auto& x : a) {
    x = ((BigUInt(prng.next_u64()) << 64) + BigUInt(prng.next_u64())) %
        ntt.modulus();
  }
  auto b = a;
  ntt.forward(b);
  ntt.inverse(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(a[i], b[i]);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BigNttTest, ::testing::Values(8, 64, 512));

TEST(BigNtt, ConvolutionMatchesSchoolbook) {
  const std::size_t n = 32;
  const auto primes = generate_ntt_primes(n, 30, 2);
  const BigNtt ntt(n, primes);
  const BigBarrett& bar = ntt.barrett();
  Prng prng(77);
  std::vector<BigUInt> a(n), b(n);
  for (auto& x : a) x = BigUInt(prng.next_u64()) % ntt.modulus();
  for (auto& x : b) x = BigUInt(prng.next_u64()) % ntt.modulus();

  std::vector<BigUInt> ref(n, BigUInt());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const BigUInt prod = bar.mulmod(a[i], b[j]);
      const std::size_t k = i + j;
      if (k < n) {
        ref[k] = bar.addmod(ref[k], prod);
      } else {
        ref[k - n] = bar.submod(ref[k - n], prod);
      }
    }
  }

  auto fa = a, fb = b;
  std::vector<BigUInt> fc(n);
  ntt.forward(fa);
  ntt.forward(fb);
  ntt.pointwise(fa, fb, fc);
  ntt.inverse(fc);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(fc[i], ref[i]);
}

TEST(BigNtt, AgreesWithPerPrimeNtts) {
  // The composite-modulus transform must equal the CRT combination of the
  // per-prime transforms — the exact equivalence the RNS representation
  // (Fig. 2) exploits.
  const std::size_t n = 64;
  const auto primes = generate_ntt_primes(n, 30, 3);
  const BigNtt big(n, primes);
  RnsBase base(primes);
  Prng prng(55);

  std::vector<BigUInt> a(n);
  for (auto& x : a) {
    x = ((BigUInt(prng.next_u64()) << 64) + BigUInt(prng.next_u64())) %
        big.modulus();
  }
  auto a_big = a;
  big.forward(a_big);

  // NOTE: per-prime NTTs must use the same root as the composite transform
  // to produce identical evaluation points, so compare via convolution
  // instead: multiply two polys both ways.
  std::vector<BigUInt> b(n);
  for (auto& x : b) x = BigUInt(prng.next_u64()) % big.modulus();
  auto fa = a, fb = b;
  std::vector<BigUInt> fc(n);
  big.forward(fa);
  big.forward(fb);
  big.pointwise(fa, fb, fc);
  big.inverse(fc);

  for (std::size_t prime_idx = 0; prime_idx < primes.size(); ++prime_idx) {
    const Modulus mod(primes[prime_idx]);
    const NttTable small(n, mod);
    std::vector<std::uint64_t> ra(n), rb(n), rc(n);
    for (std::size_t i = 0; i < n; ++i) {
      ra[i] = a[i].mod_u64(primes[prime_idx]);
      rb[i] = b[i].mod_u64(primes[prime_idx]);
    }
    small.forward(ra);
    small.forward(rb);
    small.pointwise(ra, rb, rc);
    small.inverse(rc);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(fc[i].mod_u64(primes[prime_idx]), rc[i])
          << "prime " << prime_idx << " coeff " << i;
    }
  }
}

}  // namespace
}  // namespace pphe
