#include "math/sampling.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "common/check.hpp"

namespace pphe {
namespace {

TEST(SampleHwt, ExactHammingWeight) {
  Prng prng(1);
  for (const std::size_t h : {1ul, 16ul, 64ul, 128ul}) {
    const auto v = sample_hwt(prng, 1024, h);
    std::size_t nonzero = 0;
    for (const auto x : v) {
      EXPECT_TRUE(x == -1 || x == 0 || x == 1);
      if (x != 0) ++nonzero;
    }
    EXPECT_EQ(nonzero, h);
  }
}

TEST(SampleHwt, FullWeightAllowed) {
  Prng prng(2);
  const auto v = sample_hwt(prng, 64, 64);
  for (const auto x : v) EXPECT_NE(x, 0);
}

TEST(SampleHwt, WeightAboveDimensionThrows) {
  Prng prng(3);
  EXPECT_THROW(sample_hwt(prng, 8, 9), Error);
}

TEST(SampleHwt, SignsAreBalanced) {
  Prng prng(4);
  int plus = 0, minus = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto v = sample_hwt(prng, 256, 128);
    for (const auto x : v) {
      if (x == 1) ++plus;
      if (x == -1) ++minus;
    }
  }
  const double ratio = static_cast<double>(plus) / (plus + minus);
  EXPECT_NEAR(ratio, 0.5, 0.03);
}

TEST(SampleTernary, ValuesAndDistribution) {
  Prng prng(5);
  std::array<int, 3> counts{};
  constexpr std::size_t kN = 30000;
  const auto v = sample_ternary(prng, kN);
  for (const auto x : v) {
    ASSERT_TRUE(x == -1 || x == 0 || x == 1);
    ++counts[static_cast<std::size_t>(x + 1)];
  }
  for (const auto c : counts) {
    EXPECT_NEAR(c, static_cast<int>(kN) / 3, 500);
  }
}

TEST(SampleGaussian, MomentsMatchSigma) {
  Prng prng(6);
  const double sigma = 3.2;  // the HE-standard value
  const auto v = sample_gaussian(prng, 100000, sigma);
  double sum = 0.0, sum2 = 0.0;
  for (const auto x : v) {
    sum += static_cast<double>(x);
    sum2 += static_cast<double>(x) * static_cast<double>(x);
  }
  const double mean = sum / static_cast<double>(v.size());
  const double var = sum2 / static_cast<double>(v.size()) - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  // Rounding adds 1/12 to the variance.
  EXPECT_NEAR(var, sigma * sigma + 1.0 / 12.0, 0.3);
}

TEST(SampleGaussian, TruncatedAtSixSigma) {
  Prng prng(7);
  const auto v = sample_gaussian(prng, 200000, 3.2);
  for (const auto x : v) {
    EXPECT_LE(std::abs(static_cast<double>(x)), 6.0 * 3.2 + 0.5);
  }
}

TEST(SampleGaussian, InvalidSigmaThrows) {
  Prng prng(8);
  EXPECT_THROW(sample_gaussian(prng, 8, 0.0), Error);
  EXPECT_THROW(sample_gaussian(prng, 8, -1.0), Error);
}

}  // namespace
}  // namespace pphe
