#include "core/rns_input.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ckks/rns_backend.hpp"
#include "common/check.hpp"
#include "common/prng.hpp"

namespace pphe {
namespace {

/// High-precision parameters for the exact-integer demo (Delta = 2^40, one
/// multiplicative level is all the conv needs).
CkksParams demo_params() {
  CkksParams p;
  p.degree = 1 << 11;
  p.q_bit_sizes = {58, 58, 58};
  p.special_bit_size = 60;
  p.scale = std::ldexp(1.0, 40);
  p.hamming_weight = 32;
  return p;
}

LinearSpec small_conv(std::uint64_t seed, std::size_t in = 16,
                      std::size_t out = 9) {
  Prng prng(seed);
  LinearSpec spec;
  spec.in_dim = in;
  spec.out_dim = out;
  spec.weight.resize(in * out);
  spec.bias.assign(out, 0.0f);
  for (auto& w : spec.weight) {
    w = static_cast<float>(prng.normal() * 0.4);
  }
  return spec;
}

std::vector<float> random_image(std::size_t n, std::uint64_t seed) {
  Prng prng(seed);
  std::vector<float> img(n);
  for (auto& v : img) v = static_cast<float>(prng.uniform_double());
  return img;
}

TEST(RnsConvDemo, ThreeBranchRecombinationIsExact) {
  RnsBackend backend(demo_params());
  // 8-bit-ish coprime moduli, as the paper's "three co-prime moduli".
  RnsConvDemo demo(backend, small_conv(1), {251, 247, 239}, 5);
  const auto result = demo.run(random_image(16, 2));
  EXPECT_TRUE(result.exact);
  EXPECT_EQ(result.recombined, result.reference);
  EXPECT_GT(result.eval_seconds, 0.0);
  EXPECT_LE(result.max_branch_seconds, result.eval_seconds + 1e-9);
}

TEST(RnsConvDemo, TwoBranchesAlsoExactWithSmallerRange) {
  RnsBackend backend(demo_params());
  RnsConvDemo demo(backend, small_conv(3, 12, 6), {4093, 4091}, 5);
  const auto result = demo.run(random_image(12, 4));
  EXPECT_TRUE(result.exact);
}

TEST(RnsConvDemo, NegativeOutputsSurviveCenteredCrt) {
  RnsBackend backend(demo_params());
  // All-negative weights force negative integer outputs.
  LinearSpec conv = small_conv(5, 10, 4);
  for (auto& w : conv.weight) w = -std::abs(w);
  RnsConvDemo demo(backend, conv, {251, 247, 239}, 5);
  const auto result = demo.run(random_image(10, 6));
  EXPECT_TRUE(result.exact);
  bool any_negative = false;
  for (const auto v : result.reference) {
    if (v < 0) any_negative = true;
  }
  EXPECT_TRUE(any_negative);
}

TEST(RnsConvDemo, InsufficientRangeThrows) {
  RnsBackend backend(demo_params());
  // Product 7*11 = 77 cannot cover the conv output range.
  EXPECT_THROW(RnsConvDemo(backend, small_conv(7), {7, 11}, 6), Error);
}

TEST(RnsConvDemo, NonCoprimeModuliThrow) {
  RnsBackend backend(demo_params());
  EXPECT_THROW(RnsConvDemo(backend, small_conv(8), {250, 248, 246}, 5), Error);
}

TEST(RnsConvDemo, CriticalPathBelowSumForMultipleBranches) {
  RnsBackend backend(demo_params());
  RnsConvDemo demo(backend, small_conv(9), {251, 247, 239}, 5);
  const auto result = demo.run(random_image(16, 10));
  // Three branches: the slowest branch is strictly less than the total.
  EXPECT_LT(result.max_branch_seconds, result.eval_seconds);
}

}  // namespace
}  // namespace pphe
