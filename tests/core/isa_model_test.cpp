// Full-model half of the HAL differential suite (DESIGN.md §13): the
// kernel-level tests in tests/math/hal_test.cpp pin bit-exactness per
// primitive; these pin it end-to-end — an encrypted inference under
// --force-isa=scalar and under the dispatched SIMD path must produce
// BIT-identical logits (same keys, same randomness stream, same arithmetic),
// and the content-addressed WeightOperandCache must see identical keys from
// both encode paths (no silent double-storing).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ckks/rns_backend.hpp"
#include "common/prng.hpp"
#include "core/he_model.hpp"
#include "math/hal/hal.hpp"

namespace pphe {
namespace {

using hal::Isa;

CkksParams tiny_params() {
  CkksParams p = CkksParams::test_small();
  p.q_bit_sizes = {40, 26, 26, 26, 26, 26, 26};
  return p;
}

ModelSpec tiny_spec(std::size_t in, std::size_t mid, std::size_t out,
                    std::size_t degree, std::uint64_t seed) {
  Prng prng(seed);
  ModelSpec spec;
  spec.name = "tiny";
  auto linear = [&](std::size_t i, std::size_t o) {
    ModelSpec::Stage s;
    s.kind = ModelSpec::Stage::Kind::kLinear;
    s.linear.in_dim = i;
    s.linear.out_dim = o;
    s.linear.weight.resize(i * o);
    s.linear.bias.resize(o);
    for (auto& w : s.linear.weight) {
      w = static_cast<float>(prng.normal() * 0.3);
    }
    for (auto& b : s.linear.bias) {
      b = static_cast<float>(prng.normal() * 0.1);
    }
    return s;
  };
  spec.stages.push_back(linear(in, mid));
  {
    ModelSpec::Stage s;
    s.kind = ModelSpec::Stage::Kind::kActivation;
    s.activation.features = mid;
    s.activation.degree = degree;
    s.activation.coeffs.resize(mid * (degree + 1));
    for (auto& c : s.activation.coeffs) {
      c = static_cast<float>(prng.normal() * 0.2);
    }
    spec.stages.push_back(std::move(s));
  }
  spec.stages.push_back(linear(mid, out));
  return spec;
}

std::vector<float> random_image(std::size_t n, std::uint64_t seed) {
  Prng prng(seed);
  std::vector<float> img(n);
  for (auto& v : img) v = static_cast<float>(prng.uniform_double());
  return img;
}

// Runs the whole round trip — keygen, compile (encrypted weights, so key
// switching and relinearization run too), encrypt, eval, decrypt — with the
// process dispatch pinned to `isa`. Fresh backend per call: the PRNG stream
// is seeded by the params, so both pins consume identical randomness.
std::vector<double> logits_under(Isa isa, const ModelSpec& spec,
                                 const std::vector<float>& img) {
  hal::ScopedForceIsa pin(isa);
  RnsBackend backend(tiny_params());
  HeModelOptions options;
  options.encrypted_weights = true;
  const HeModel model(backend, spec, options);
  const InferenceResult result = model.infer(img);
  EXPECT_FALSE(result.degraded);
  return result.logits;
}

TEST(IsaModel, EncryptedLogitsBitIdenticalScalarVsDispatched) {
  const Isa best = hal::best_available();
  if (best == Isa::kScalar) {
    GTEST_SKIP() << "no SIMD kernels on this host/build";
  }
  const ModelSpec spec = tiny_spec(12, 8, 4, 2, 42);
  const auto img = random_image(12, 7);

  const std::vector<double> scalar_logits =
      logits_under(Isa::kScalar, spec, img);
  const std::vector<double> simd_logits = logits_under(best, spec, img);

  ASSERT_EQ(scalar_logits.size(), simd_logits.size());
  for (std::size_t i = 0; i < scalar_logits.size(); ++i) {
    // Bitwise, not EXPECT_NEAR: the SIMD kernels implement the identical
    // arithmetic, so even the noise is the same.
    EXPECT_EQ(scalar_logits[i], simd_logits[i]) << "logit " << i;
  }
}

TEST(IsaModel, FusedBsgsLogitsBitIdenticalScalarVsDispatched) {
  const Isa best = hal::best_available();
  if (best == Isa::kScalar) {
    GTEST_SKIP() << "no SIMD kernels on this host/build";
  }
  // Plaintext weights engage the double-hoisted linear_bsgs path (DESIGN.md
  // §14): raised-basis accumulation and the deferred mod-down epilogue must
  // be bit-identical across ISAs, same as the per-rotation schedule.
  const ModelSpec spec = tiny_spec(12, 8, 4, 2, 44);
  const auto img = random_image(12, 11);
  const auto fused_logits_under = [&](Isa isa) {
    hal::ScopedForceIsa pin(isa);
    RnsBackend backend(tiny_params());
    HeModelOptions options;
    options.encrypted_weights = false;
    const HeModel model(backend, spec, options);
    for (const auto& cost : model.cost_report()) {
      if (cost.name.rfind("linear", 0) == 0) {
        EXPECT_TRUE(cost.fused) << cost.name;
      }
    }
    const InferenceResult result = model.infer(img);
    EXPECT_FALSE(result.degraded);
    return result.logits;
  };

  const std::vector<double> scalar_logits = fused_logits_under(Isa::kScalar);
  const std::vector<double> simd_logits = fused_logits_under(best);
  ASSERT_EQ(scalar_logits.size(), simd_logits.size());
  for (std::size_t i = 0; i < scalar_logits.size(); ++i) {
    EXPECT_EQ(scalar_logits[i], simd_logits[i]) << "logit " << i;
  }
}

TEST(IsaModel, WeightCacheKeysIdenticalAcrossIsas) {
  const Isa best = hal::best_available();
  if (best == Isa::kScalar) {
    GTEST_SKIP() << "no SIMD kernels on this host/build";
  }
  const ModelSpec spec = tiny_spec(12, 8, 4, 2, 43);
  const auto cache = std::make_shared<WeightOperandCache>();
  RnsBackend backend(tiny_params());
  HeModelOptions options;
  options.encrypted_weights = false;
  options.weight_cache = cache;

  std::unique_ptr<HeModel> scalar_model;
  {
    hal::ScopedForceIsa pin(Isa::kScalar);
    scalar_model = std::make_unique<HeModel>(backend, spec, options);
  }
  const auto after_scalar = cache->stats();
  ASSERT_GT(after_scalar.misses, 0u);
  ASSERT_EQ(after_scalar.entries, after_scalar.misses);

  // Same spec compiled under the SIMD dispatch against the SAME cache: every
  // weight encode must hit — the cache key is the raw (values, scale, level)
  // content, which the encode path must produce identically under any ISA.
  // New misses here would mean silent double-storing.
  std::unique_ptr<HeModel> simd_model;
  {
    hal::ScopedForceIsa pin(best);
    simd_model = std::make_unique<HeModel>(backend, spec, options);
  }
  const auto after_simd = cache->stats();
  EXPECT_EQ(after_simd.misses, after_scalar.misses);
  EXPECT_EQ(after_simd.entries, after_scalar.entries);
  EXPECT_GE(after_simd.hits, after_scalar.hits + after_scalar.misses);

  // The cross-compiled models evaluate one SAME encrypted input to bitwise
  // equal logits: scalar-encoded cached operands consumed by SIMD kernels.
  const auto img = random_image(12, 9);
  std::vector<double> scalar_logits, simd_logits;
  std::vector<Ciphertext> enc;
  {
    hal::ScopedForceIsa pin(Isa::kScalar);
    enc = scalar_model->encrypt_input(img);
    scalar_logits = scalar_model->decrypt_logits(scalar_model->eval(enc));
  }
  {
    hal::ScopedForceIsa pin(best);
    simd_logits = simd_model->decrypt_logits(simd_model->eval(enc));
  }
  ASSERT_EQ(scalar_logits.size(), simd_logits.size());
  for (std::size_t i = 0; i < scalar_logits.size(); ++i) {
    EXPECT_EQ(scalar_logits[i], simd_logits[i]) << "logit " << i;
  }
}

}  // namespace
}  // namespace pphe
