#include "core/models.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/prng.hpp"

namespace pphe {
namespace {

TEST(BuildNetwork, Cnn1ShapesFlowThrough) {
  auto net = build_network(Arch::kCnn1, Activation::kSlaf, 1);
  Tensor x({2, 1, 28, 28});
  const Tensor y = net->forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 10}));
}

TEST(BuildNetwork, Cnn2ShapesFlowThrough) {
  auto net = build_network(Arch::kCnn2, Activation::kSlaf, 1);
  Tensor x({2, 1, 28, 28});
  const Tensor y = net->forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 10}));
}

TEST(BuildNetwork, ReluAndSquareVariants) {
  for (const auto act : {Activation::kRelu, Activation::kSquare}) {
    auto net = build_network(Arch::kCnn1, act, 2);
    Tensor x({1, 1, 28, 28});
    EXPECT_NO_THROW(net->forward(x, false));
  }
}

TEST(CompileModel, ReluRejected) {
  TrainedModel m;
  m.arch = Arch::kCnn1;
  m.activation = Activation::kRelu;
  m.network = build_network(Arch::kCnn1, Activation::kRelu, 1);
  EXPECT_THROW(compile_model(m), Error);
}

TEST(CompileModel, Cnn1StageStructure) {
  TrainedModel m;
  m.arch = Arch::kCnn1;
  m.activation = Activation::kSlaf;
  m.network = build_network(Arch::kCnn1, Activation::kSlaf, 1);
  const ModelSpec spec = compile_model(m);
  ASSERT_EQ(spec.stages.size(), 5u);
  EXPECT_EQ(spec.stages[0].kind, ModelSpec::Stage::Kind::kLinear);
  EXPECT_EQ(spec.stages[0].linear.in_dim, 784u);
  EXPECT_EQ(spec.stages[0].linear.out_dim, 720u);
  EXPECT_EQ(spec.stages[1].kind, ModelSpec::Stage::Kind::kActivation);
  EXPECT_EQ(spec.stages[1].activation.features, 720u);
  EXPECT_EQ(spec.stages[2].linear.out_dim, 64u);
  EXPECT_EQ(spec.stages[4].linear.out_dim, 10u);
  // depth: 3 linears + 2 degree-3 activations = 3 + 2*3 = 9.
  EXPECT_EQ(spec.depth(), 9u);
}

TEST(CompileModel, Cnn2StageStructureAndDepth) {
  TrainedModel m;
  m.arch = Arch::kCnn2;
  m.activation = Activation::kSlaf;
  m.network = build_network(Arch::kCnn2, Activation::kSlaf, 1);
  const ModelSpec spec = compile_model(m);
  ASSERT_EQ(spec.stages.size(), 6u);
  EXPECT_EQ(spec.stages[0].linear.out_dim, 720u);
  EXPECT_EQ(spec.stages[2].linear.in_dim, 720u);
  EXPECT_EQ(spec.stages[2].linear.out_dim, 160u);
  // 4 linears + 2 degree-3 activations = 10.
  EXPECT_EQ(spec.depth(), 10u);
}

TEST(CompileModel, LoweredConvMatchesNetworkForward) {
  // eval_spec on the lowered matrices must equal the network's own forward
  // (including folded batch norm in eval mode).
  TrainedModel m;
  m.arch = Arch::kCnn2;
  m.activation = Activation::kSlaf;
  m.network = build_network(Arch::kCnn2, Activation::kSlaf, 3);
  // Give SLAF nontrivial coefficients and batchnorm nontrivial stats.
  Prng prng(17);
  for (Param* p : m.network->params()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      p->value[i] += 0.05f * static_cast<float>(prng.normal());
    }
  }
  Tensor warm({8, 1, 28, 28});
  for (std::size_t i = 0; i < warm.size(); ++i) {
    warm[i] = static_cast<float>(prng.uniform_double());
  }
  m.network->forward(warm, true);  // move BN running stats

  const ModelSpec spec = compile_model(m);
  Tensor x({1, 1, 28, 28});
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(prng.uniform_double());
  }
  const Tensor want = m.network->forward(x, false);
  const auto got = eval_spec(
      spec, std::vector<float>(x.data(), x.data() + 784));
  ASSERT_EQ(got.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-3) << i;
  }
}

TEST(TrainProtocol, SlafProtocolLearnsSomething) {
  const Dataset train_set = generate_synthetic_mnist(600, 11);
  const Dataset test_set = generate_synthetic_mnist(200, 12);
  ProtocolConfig cfg;
  cfg.relu_epochs = 5;
  cfg.slaf_epochs = 4;
  cfg.seed = 5;
  const TrainedModel m =
      train_protocol(Arch::kCnn1, Activation::kSlaf, train_set, test_set, cfg);
  EXPECT_GT(m.test_accuracy, 60.0f);  // far above the 10% chance level
  EXPECT_EQ(m.activation, Activation::kSlaf);
}

TEST(EvalSpec, DimensionMismatchThrows) {
  ModelSpec spec;
  ModelSpec::Stage stage;
  stage.kind = ModelSpec::Stage::Kind::kLinear;
  stage.linear.in_dim = 4;
  stage.linear.out_dim = 2;
  stage.linear.weight.assign(8, 1.0f);
  stage.linear.bias.assign(2, 0.0f);
  spec.stages.push_back(stage);
  EXPECT_THROW(eval_spec(spec, std::vector<float>(3, 1.0f)), Error);
}

TEST(ArchName, Names) {
  EXPECT_EQ(arch_name(Arch::kCnn1), "CNN1");
  EXPECT_EQ(arch_name(Arch::kCnn2), "CNN2");
}

}  // namespace
}  // namespace pphe
