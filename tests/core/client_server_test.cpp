// The client/server round trip of examples/client_server.cpp as a ctest:
// serialized upload, cloud-side eval, serialized download, plus the recovery
// path — one injected wire corruption must be detected at decode and healed
// by retry-with-recompute.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ckks/rns_backend.hpp"
#include "ckks/serialize.hpp"
#include "common/check.hpp"
#include "common/fault.hpp"
#include "common/prng.hpp"
#include "core/serving.hpp"

namespace pphe {
namespace {

CkksParams tiny_params() {
  CkksParams p = CkksParams::test_small();
  p.q_bit_sizes = {40, 26, 26, 26, 26, 26, 26};
  return p;
}

ModelSpec tiny_spec(std::uint64_t seed) {
  Prng prng(seed);
  ModelSpec spec;
  spec.name = "serving-tiny";
  auto linear = [&](std::size_t i, std::size_t o) {
    ModelSpec::Stage s;
    s.kind = ModelSpec::Stage::Kind::kLinear;
    s.linear.in_dim = i;
    s.linear.out_dim = o;
    s.linear.weight.resize(i * o);
    s.linear.bias.resize(o);
    for (auto& w : s.linear.weight) {
      w = static_cast<float>(prng.normal() * 0.3);
    }
    for (auto& b : s.linear.bias) {
      b = static_cast<float>(prng.normal() * 0.1);
    }
    return s;
  };
  spec.stages.push_back(linear(12, 8));
  {
    ModelSpec::Stage s;
    s.kind = ModelSpec::Stage::Kind::kActivation;
    s.activation.features = 8;
    s.activation.degree = 2;
    s.activation.coeffs.resize(8 * 3);
    for (auto& c : s.activation.coeffs) {
      c = static_cast<float>(prng.normal() * 0.2);
    }
    spec.stages.push_back(std::move(s));
  }
  spec.stages.push_back(linear(8, 5));
  return spec;
}

std::vector<float> test_image() {
  Prng prng(99);
  std::vector<float> img(12);
  for (auto& v : img) v = static_cast<float>(prng.uniform_double());
  return img;
}

/// Backend + compiled model shared across this binary's round-trip tests
/// (compilation encrypts every weight, which dominates the suite otherwise).
struct Rig {
  RnsBackend backend;
  HeModel model;
  Rig()
      : backend(tiny_params()),
        model(backend, tiny_spec(31),
              [] {
                HeModelOptions o;
                o.encrypted_weights = false;
                return o;
              }()) {}
};

Rig& rig() {
  static Rig r;
  return r;
}

class ClientServerTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm(); }
};

TEST_F(ClientServerTest, CleanRoundTripClassifiesInOneAttempt) {
  const ServeOutcome outcome =
      serve_classify(rig().backend, rig().model, test_image());
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_TRUE(outcome.faults.empty());
  EXPECT_FALSE(outcome.degraded);
  ASSERT_EQ(outcome.logits.size(), 5u);
  EXPECT_GE(outcome.predicted, 0);
  // The served prediction equals the direct (no wire) inference.
  const InferenceResult direct = rig().model.infer(test_image());
  EXPECT_EQ(outcome.predicted, direct.predicted);
  for (std::size_t i = 0; i < outcome.logits.size(); ++i) {
    EXPECT_NEAR(outcome.logits[i], direct.logits[i], 1e-3) << i;
  }
}

TEST_F(ClientServerTest, InjectedUploadCorruptionIsDetectedAndRetried) {
  fault::FaultSpec spec;
  spec.seed = 4;
  spec.rules.push_back(
      {fault::Site::kWireUpload, fault::Kind::kLimbBitFlip, 1.0, 1});
  fault::configure(spec);

  const ServeOutcome outcome =
      serve_classify(rig().backend, rig().model, test_image());
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 2);  // detected once, recomputed once
  ASSERT_EQ(outcome.faults.size(), 1u);
  EXPECT_TRUE(outcome.faults[0].code == ErrorCode::kChecksumMismatch ||
              outcome.faults[0].code == ErrorCode::kSerialization)
      << error_code_name(outcome.faults[0].code);
  // Recovery converged on the right answer, not just any answer.
  const InferenceResult direct = rig().model.infer(test_image());
  EXPECT_EQ(outcome.predicted, direct.predicted);
}

TEST_F(ClientServerTest, RetryBudgetExhaustionReportsFailure) {
  fault::FaultSpec spec;
  spec.seed = 4;
  // Unlimited truncations: every attempt's upload is destroyed.
  spec.rules.push_back(
      {fault::Site::kWireUpload, fault::Kind::kTruncate, 1.0, ~0ull});
  fault::configure(spec);

  ServingOptions options;
  options.max_retries = 2;
  const ServeOutcome outcome =
      serve_classify(rig().backend, rig().model, test_image(), options);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 3);
  ASSERT_EQ(outcome.faults.size(), 3u);
  for (const auto& f : outcome.faults) {
    EXPECT_EQ(f.code, ErrorCode::kSerialization) << f.message;
  }
}

TEST_F(ClientServerTest, WatchdogConvertsStallIntoTimeoutThenRecovers) {
  fault::FaultSpec spec;
  spec.seed = 1;
  // The stall precedes eval, so it alone must exceed the deadline; the
  // deadline stays generous enough that the clean retry never trips it.
  spec.slow_seconds = 3.0;
  spec.rules.push_back(
      {fault::Site::kWorker, fault::Kind::kSlowWorker, 1.0, 1});
  fault::configure(spec);

  ServingOptions options;
  options.watchdog_seconds = 2.0;
  const ServeOutcome outcome =
      serve_classify(rig().backend, rig().model, test_image(), options);
  ASSERT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 2);
  ASSERT_EQ(outcome.faults.size(), 1u);
  EXPECT_EQ(outcome.faults[0].code, ErrorCode::kTimeout);
}

}  // namespace
}  // namespace pphe
