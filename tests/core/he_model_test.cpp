#include "core/he_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ckks/big_backend.hpp"
#include "ckks/rns_backend.hpp"
#include "common/check.hpp"
#include "common/prng.hpp"

namespace pphe {
namespace {

/// Small parameters with enough chain for a linear-act(3)-linear spec
/// (depth 1 + 3 + 1 = 5) at N = 2^11.
CkksParams tiny_params() {
  CkksParams p = CkksParams::test_small();
  p.q_bit_sizes = {40, 26, 26, 26, 26, 26, 26};
  return p;
}

/// Random linear(in->mid) -> SLAF(deg) -> linear(mid->out) spec with small
/// weights, so plaintext reference values stay O(1).
ModelSpec tiny_spec(std::size_t in, std::size_t mid, std::size_t out,
                    std::size_t degree, std::uint64_t seed) {
  Prng prng(seed);
  ModelSpec spec;
  spec.name = "tiny";
  auto linear = [&](std::size_t i, std::size_t o) {
    ModelSpec::Stage s;
    s.kind = ModelSpec::Stage::Kind::kLinear;
    s.linear.in_dim = i;
    s.linear.out_dim = o;
    s.linear.weight.resize(i * o);
    s.linear.bias.resize(o);
    for (auto& w : s.linear.weight) {
      w = static_cast<float>(prng.normal() * 0.3);
    }
    for (auto& b : s.linear.bias) {
      b = static_cast<float>(prng.normal() * 0.1);
    }
    return s;
  };
  spec.stages.push_back(linear(in, mid));
  {
    ModelSpec::Stage s;
    s.kind = ModelSpec::Stage::Kind::kActivation;
    s.activation.features = mid;
    s.activation.degree = degree;
    s.activation.coeffs.resize(mid * (degree + 1));
    for (auto& c : s.activation.coeffs) {
      c = static_cast<float>(prng.normal() * 0.2);
    }
    spec.stages.push_back(std::move(s));
  }
  spec.stages.push_back(linear(mid, out));
  return spec;
}

std::vector<float> random_image(std::size_t n, std::uint64_t seed) {
  Prng prng(seed);
  std::vector<float> img(n);
  for (auto& v : img) v = static_cast<float>(prng.uniform_double());
  return img;
}

/// HE logits must agree with the plaintext evaluation of the same spec on the
/// QUANTIZED image (the engine quantizes pixels to pixel_levels).
void expect_matches_plaintext(HeBackend& backend, const ModelSpec& spec,
                              const HeModelOptions& options, double tol) {
  const HeModel model(backend, spec, options);
  const auto img = random_image(spec.stages[0].linear.in_dim, 99);
  std::vector<float> quantized(img.size());
  for (std::size_t i = 0; i < img.size(); ++i) {
    quantized[i] = std::round(img[i] * 255.0f) / 255.0f;
  }
  const auto want = eval_spec(spec, quantized);
  const InferenceResult got = model.infer(img);
  ASSERT_EQ(got.logits.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got.logits[i], static_cast<double>(want[i]), tol) << i;
  }
}

TEST(HeModel, RnsPlaintextWeightsMatchesReference) {
  RnsBackend backend(tiny_params());
  HeModelOptions options;
  options.encrypted_weights = false;
  expect_matches_plaintext(backend, tiny_spec(12, 8, 5, 3, 1), options, 5e-2);
}

TEST(HeModel, RnsEncryptedWeightsMatchesReference) {
  RnsBackend backend(tiny_params());
  HeModelOptions options;
  options.encrypted_weights = true;  // the paper's eq. (1) setting
  expect_matches_plaintext(backend, tiny_spec(12, 8, 5, 3, 2), options, 8e-2);
}

TEST(HeModel, BigBackendMatchesReference) {
  BigBackend backend(tiny_params());
  HeModelOptions options;
  options.encrypted_weights = true;
  expect_matches_plaintext(backend, tiny_spec(12, 8, 5, 3, 3), options, 8e-2);
}

TEST(HeModel, DigitBranchDecompositionIsExact) {
  // Fig. 5 branches: 1, 2, 3 branches must all yield the same logits
  // (digit recombination is linear and folded into the weights).
  RnsBackend backend(tiny_params());
  const ModelSpec spec = tiny_spec(12, 8, 5, 3, 4);
  const auto img = random_image(12, 50);
  std::vector<double> reference;
  for (const std::size_t k : {1u, 2u, 3u}) {
    HeModelOptions options;
    options.encrypted_weights = false;
    options.rns_branches = k;
    const HeModel model(backend, spec, options);
    const auto got = model.infer(img).logits;
    if (reference.empty()) {
      reference = got;
    } else {
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i], reference[i], 5e-2) << "k=" << k;
      }
    }
  }
}

TEST(HeModel, SquareActivationDegreeTwo) {
  RnsBackend backend(tiny_params());
  HeModelOptions options;
  options.encrypted_weights = false;
  expect_matches_plaintext(backend, tiny_spec(10, 6, 4, 2, 5), options, 5e-2);
}

TEST(HeModel, LevelsUsedMatchesSpecDepth) {
  RnsBackend backend(tiny_params());
  const ModelSpec spec = tiny_spec(12, 8, 5, 3, 6);
  HeModelOptions options;
  options.encrypted_weights = false;
  const HeModel model(backend, spec, options);
  EXPECT_EQ(model.levels_used(), static_cast<int>(spec.depth()));
}

TEST(HeModel, DepthBeyondChainThrows) {
  CkksParams p = CkksParams::test_small();  // 5 primes -> 4 rescales
  RnsBackend backend(p);
  const ModelSpec spec = tiny_spec(12, 8, 5, 3, 7);  // needs 5
  HeModelOptions options;
  options.encrypted_weights = false;
  EXPECT_THROW(HeModel(backend, spec, options), Error);
}

TEST(HeModel, RotationStepsAreRegistered) {
  RnsBackend backend(tiny_params());
  const ModelSpec spec = tiny_spec(12, 8, 5, 3, 8);
  HeModelOptions options;
  options.encrypted_weights = false;
  const HeModel model(backend, spec, options);
  EXPECT_FALSE(model.rotation_steps().empty());
  for (const int s : model.rotation_steps()) {
    EXPECT_GT(s, 0);
    EXPECT_LT(s, static_cast<int>(backend.slot_count()));
  }
}

TEST(HeModel, CostReportCountsStages) {
  RnsBackend backend(tiny_params());
  const ModelSpec spec = tiny_spec(12, 8, 5, 3, 9);
  HeModelOptions options;
  options.encrypted_weights = false;
  const HeModel model(backend, spec, options);
  const auto report = model.cost_report();
  ASSERT_EQ(report.size(), 3u);
  EXPECT_GT(report[0].diagonals, 0u);
  EXPECT_EQ(report[1].relins, 3u);  // degree-3 activation
  EXPECT_GE(report[0].level_in, report[2].level_in);
}

TEST(HeModel, TimingFieldsPopulated) {
  RnsBackend backend(tiny_params());
  const ModelSpec spec = tiny_spec(12, 8, 5, 2, 10);
  HeModelOptions options;
  options.encrypted_weights = false;
  const HeModel model(backend, spec, options);
  const auto result = model.infer(random_image(12, 1));
  EXPECT_GT(result.encrypt_seconds, 0.0);
  EXPECT_GT(result.eval_seconds, 0.0);
  EXPECT_GT(result.decrypt_seconds, 0.0);
  EXPECT_GE(result.predicted, 0);
  EXPECT_LT(result.predicted, 5);
}

TEST(HeModel, MeasuredErrorWithinPredictedBound) {
  // The NoiseTracker bound propagated through the plan must dominate the
  // measured logit error, for plaintext and encrypted weights alike.
  RnsBackend backend(tiny_params());
  const ModelSpec spec = tiny_spec(12, 8, 5, 3, 20);
  for (const bool enc_w : {false, true}) {
    HeModelOptions options;
    options.encrypted_weights = enc_w;
    const HeModel model(backend, spec, options);
    EXPECT_GT(model.predicted_output_error(), 0.0);

    const auto img = random_image(12, 77);
    std::vector<float> quantized(img.size());
    for (std::size_t i = 0; i < img.size(); ++i) {
      quantized[i] = std::round(img[i] * 255.0f) / 255.0f;
    }
    const auto want = eval_spec(spec, quantized);
    const auto got = model.infer(img).logits;
    double measured = 0.0;
    for (std::size_t i = 0; i < want.size(); ++i) {
      measured = std::max(measured,
                          std::abs(got[i] - static_cast<double>(want[i])));
    }
    EXPECT_LT(measured, model.predicted_output_error())
        << (enc_w ? "encrypted" : "plaintext") << " weights";
  }
}

TEST(HeModel, BatchedInferenceMatchesPerImage) {
  // options.batch images interleaved in one ciphertext: every image's logits
  // must match its own single-image evaluation.
  RnsBackend backend(tiny_params());
  const ModelSpec spec = tiny_spec(12, 8, 5, 3, 12);
  HeModelOptions single;
  single.encrypted_weights = false;
  const HeModel one(backend, spec, single);

  HeModelOptions batched = single;
  batched.batch = 4;
  const HeModel many(backend, spec, batched);

  std::vector<std::vector<float>> images;
  for (std::uint64_t s = 0; s < 4; ++s) {
    images.push_back(random_image(12, 100 + s));
  }
  const auto batch_result = many.infer_batch(images);
  ASSERT_EQ(batch_result.logits.size(), 4u);
  for (std::size_t img = 0; img < 4; ++img) {
    const auto ref = one.infer(images[img]).logits;
    ASSERT_EQ(batch_result.logits[img].size(), ref.size());
    for (std::size_t t = 0; t < ref.size(); ++t) {
      EXPECT_NEAR(batch_result.logits[img][t], ref[t], 8e-2)
          << "image " << img << " logit " << t;
    }
    EXPECT_EQ(batch_result.predicted[img], one.infer(images[img]).predicted);
  }
}

TEST(HeModel, BatchMustBePowerOfTwoAndFit) {
  RnsBackend backend(tiny_params());
  const ModelSpec spec = tiny_spec(12, 8, 5, 2, 13);
  HeModelOptions options;
  options.encrypted_weights = false;
  options.batch = 3;  // not a power of two
  EXPECT_THROW(HeModel(backend, spec, options), Error);
  options.batch = backend.slot_count();  // tile * batch > slots
  EXPECT_THROW(HeModel(backend, spec, options), Error);
}

TEST(HeModel, SingleImageInferRejectsBatchModel) {
  RnsBackend backend(tiny_params());
  const ModelSpec spec = tiny_spec(12, 8, 5, 2, 14);
  HeModelOptions options;
  options.encrypted_weights = false;
  options.batch = 2;
  const HeModel model(backend, spec, options);
  const auto img = random_image(12, 1);
  EXPECT_THROW(model.infer(img), Error);
}

TEST(HeModel, WrongInputSizeThrows) {
  RnsBackend backend(tiny_params());
  const ModelSpec spec = tiny_spec(12, 8, 5, 2, 11);
  HeModelOptions options;
  options.encrypted_weights = false;
  const HeModel model(backend, spec, options);
  const auto img = random_image(11, 1);
  EXPECT_THROW(model.infer(img), Error);
}

TEST(HeModel, PlannedBudgetsArePositiveAndOrdered) {
  RnsBackend backend(tiny_params());
  HeModelOptions options;
  options.encrypted_weights = false;
  const HeModel model(backend, tiny_spec(12, 8, 5, 2, 21), options);
  // Evaluation consumes modulus, so the output budget is strictly smaller.
  EXPECT_GT(model.planned_output_budget_bits(), 0.0);
  EXPECT_GT(model.planned_input_budget_bits(),
            model.planned_output_budget_bits());
}

TEST(HeModel, NoiseGuardrailRefusesWithTypedErrorNotGarbage) {
  RnsBackend backend(tiny_params());
  HeModelOptions options;
  options.encrypted_weights = false;
  options.min_noise_budget_bits = 1e6;  // unreachable floor
  const HeModel model(backend, tiny_spec(12, 8, 5, 2, 22), options);
  const auto img = random_image(12, 3);
  try {
    model.eval(model.encrypt_input(img));
    FAIL() << "expected Error(kNoiseBudget)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNoiseBudget);
  }
  // infer() reports the refusal as a typed degraded result.
  const InferenceResult r = model.infer(img);
  EXPECT_TRUE(r.degraded);
  EXPECT_TRUE(r.logits.empty());
  EXPECT_EQ(r.predicted, -1);
}

TEST(HeModel, NoiseGuardrailPassesWithAchievableFloor) {
  RnsBackend backend(tiny_params());
  HeModelOptions options;
  options.encrypted_weights = false;
  const HeModel probe(backend, tiny_spec(12, 8, 5, 2, 23), options);
  // A floor just under the planned output budget admits fresh inputs.
  options.min_noise_budget_bits = probe.planned_output_budget_bits() - 1.0;
  ASSERT_GT(options.min_noise_budget_bits, 0.0);
  const HeModel model(backend, tiny_spec(12, 8, 5, 2, 23), options);
  const InferenceResult r = model.infer(random_image(12, 4));
  EXPECT_FALSE(r.degraded);
  EXPECT_FALSE(r.logits.empty());
}

TEST(HeModel, NoiseGuardrailChargesInputDeficit) {
  RnsBackend backend(tiny_params());
  HeModelOptions options;
  options.encrypted_weights = false;
  const HeModel probe(backend, tiny_spec(12, 8, 5, 2, 24), options);
  options.min_noise_budget_bits = probe.planned_output_budget_bits() - 1.0;
  const HeModel model(backend, tiny_spec(12, 8, 5, 2, 24), options);
  auto inputs = model.encrypt_input(random_image(12, 5));
  // Dropping a prime from the inputs costs ~26 bits of budget: the deficit
  // pushes the projected output budget below the floor BEFORE the level
  // checks would reject the plan mismatch — the guard owns this failure.
  for (auto& ct : inputs) {
    ct = backend.mod_drop_to(ct, ct.level() - 1);
  }
  try {
    model.eval(inputs);
    FAIL() << "expected Error(kNoiseBudget)";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNoiseBudget);
  }
}

TEST(WeightOperandCache, EncodesEachDistinctKeyOnce) {
  RnsBackend backend(tiny_params());
  auto cache = std::make_shared<WeightOperandCache>();
  int made = 0;
  const std::vector<double> v1{1.0, 2.0, 3.0};
  const std::vector<double> v2{1.0, 2.0, 4.0};
  const auto factory = [&]() -> WeightOperand {
    ++made;
    return backend.encode(v1, 1024.0, 1);
  };
  (void)cache->get_or_make(backend, false, v1, 1024.0, 1, factory);
  (void)cache->get_or_make(backend, false, v1, 1024.0, 1, factory);  // hit
  (void)cache->get_or_make(backend, false, v2, 1024.0, 1, factory);  // values
  (void)cache->get_or_make(backend, false, v1, 2048.0, 1, factory);  // scale
  (void)cache->get_or_make(backend, false, v1, 1024.0, 0, factory);  // level
  (void)cache->get_or_make(backend, true, v1, 1024.0, 1, factory);   // enc
  EXPECT_EQ(made, 5);
  const auto stats = cache->stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 5u);
  EXPECT_EQ(stats.entries, 5u);

  // The hit returns the SAME handle, not a re-encode.
  const WeightOperand a =
      cache->get_or_make(backend, false, v1, 1024.0, 1, factory);
  const WeightOperand b =
      cache->get_or_make(backend, false, v1, 1024.0, 1, factory);
  EXPECT_EQ(std::get<Plaintext>(a).impl().get(),
            std::get<Plaintext>(b).impl().get());

  cache->clear();
  EXPECT_EQ(cache->stats().entries, 0u);
}

TEST(WeightOperandCache, SharedCacheDedupesAcrossModels) {
  RnsBackend backend(tiny_params());
  const ModelSpec spec = tiny_spec(12, 8, 5, 2, 11);
  HeModelOptions options;
  options.encrypted_weights = false;
  options.weight_cache = std::make_shared<WeightOperandCache>();

  const HeModel first(backend, spec, options);
  const auto after_first = options.weight_cache->stats();
  EXPECT_GT(after_first.misses, 0u);

  // Compiling the identical spec again must hit for every weight.
  const HeModel second(backend, spec, options);
  const auto after_second = options.weight_cache->stats();
  EXPECT_EQ(after_second.misses, after_first.misses);
  EXPECT_GE(after_second.hits, after_first.misses);

  // And the cached-weight model still computes the right logits. Each infer
  // encrypts the image with fresh randomness, so the two runs agree only up
  // to CKKS encryption noise, not bit-exactly.
  const auto img = random_image(12, 7);
  const auto want = first.infer(img).logits;
  const auto got = second.infer(img).logits;
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-3);
  }
}

}  // namespace
}  // namespace pphe
