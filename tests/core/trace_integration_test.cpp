// End-to-end tracing invariants: for a 2-layer model on both backends, the
// category-"he" spans recorded during an inference mirror the backend's
// typed op counters exactly, and every per-layer span carries level/scale
// telemetry.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "ckks/big_backend.hpp"
#include "ckks/rns_backend.hpp"
#include "common/prng.hpp"
#include "common/trace.hpp"
#include "core/he_model.hpp"

namespace pphe {
namespace {

#if PPHE_TRACE_COMPILED

CkksParams tiny_params() {
  CkksParams p = CkksParams::test_small();
  p.q_bit_sizes = {40, 26, 26, 26, 26, 26, 26};
  return p;
}

/// linear(in->mid) -> SLAF(deg 3) -> linear(mid->out), small random weights.
ModelSpec tiny_spec(std::size_t in, std::size_t mid, std::size_t out,
                    std::uint64_t seed) {
  Prng prng(seed);
  ModelSpec spec;
  spec.name = "tiny";
  auto linear = [&](std::size_t i, std::size_t o) {
    ModelSpec::Stage s;
    s.kind = ModelSpec::Stage::Kind::kLinear;
    s.linear.in_dim = i;
    s.linear.out_dim = o;
    s.linear.weight.resize(i * o);
    s.linear.bias.resize(o);
    for (auto& w : s.linear.weight) {
      w = static_cast<float>(prng.normal() * 0.3);
    }
    for (auto& b : s.linear.bias) {
      b = static_cast<float>(prng.normal() * 0.1);
    }
    return s;
  };
  spec.stages.push_back(linear(in, mid));
  {
    ModelSpec::Stage s;
    s.kind = ModelSpec::Stage::Kind::kActivation;
    s.activation.features = mid;
    s.activation.degree = 3;
    s.activation.coeffs.resize(mid * 4);
    for (auto& c : s.activation.coeffs) {
      c = static_cast<float>(prng.normal() * 0.2);
    }
    spec.stages.push_back(std::move(s));
  }
  spec.stages.push_back(linear(mid, out));
  return spec;
}

std::vector<float> random_image(std::size_t n, std::uint64_t seed) {
  Prng prng(seed);
  std::vector<float> img(n);
  for (auto& v : img) v = static_cast<float>(prng.uniform_double());
  return img;
}

std::map<std::string, std::uint64_t> span_counts_by_name(
    const std::string& category) {
  std::map<std::string, std::uint64_t> counts;
  for (const trace::Event& ev : trace::snapshot()) {
    if (category == ev.cat) ++counts[ev.name];
  }
  return counts;
}

double attr_or(const trace::Event& ev, const char* key, double fallback) {
  for (std::uint32_t i = 0; i < ev.attr_count; ++i) {
    if (std::string(ev.attrs[i].key) == key) return ev.attrs[i].value;
  }
  return fallback;
}

class TraceIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::set_enabled(false);
    trace::clear();
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::clear();
  }

  /// Compiles the model untraced, then records exactly one traced inference
  /// with op counters reset, so spans and counters cover the same window.
  void run_traced_inference(HeBackend& backend) {
    const ModelSpec spec = tiny_spec(8, 4, 3, 7);
    HeModelOptions options;
    options.encrypted_weights = true;
    const HeModel model(backend, spec, options);

    trace::clear();
    backend.reset_op_counts();
    trace::set_enabled(true);
    (void)model.infer(random_image(8, 99));
    trace::set_enabled(false);
  }
};

TEST_F(TraceIntegrationTest, HeSpansMatchOpCountsOnRns) {
  RnsBackend backend(tiny_params());
  run_traced_inference(backend);
  EXPECT_EQ(trace::dropped_count(), 0u);
  const auto spans = span_counts_by_name("he");
  EXPECT_FALSE(spans.empty());
  EXPECT_EQ(spans, backend.op_counts());
}

TEST_F(TraceIntegrationTest, HeSpansMatchOpCountsOnBig) {
  BigBackend backend(tiny_params());
  run_traced_inference(backend);
  EXPECT_EQ(trace::dropped_count(), 0u);
  const auto spans = span_counts_by_name("he");
  EXPECT_FALSE(spans.empty());
  EXPECT_EQ(spans, backend.op_counts());
}

TEST_F(TraceIntegrationTest, LayerSpansCarryLevelAndScale) {
  RnsBackend backend(tiny_params());
  run_traced_inference(backend);
  std::size_t layers = 0;
  int prev_level = 1 << 20;
  for (const trace::Event& ev : trace::snapshot()) {
    if (std::string(ev.cat) != "layer") continue;
    ++layers;
    EXPECT_EQ(std::string(ev.name).rfind("layer", 0), 0u) << ev.name;
    const int level = static_cast<int>(attr_or(ev, "level", -1));
    const double scale_log2 = attr_or(ev, "scale_log2", -1);
    EXPECT_GE(level, 0) << ev.name;
    // Levels never increase through the network.
    EXPECT_LE(level, prev_level) << ev.name;
    prev_level = level;
    EXPECT_GT(scale_log2, 1.0) << ev.name;
    EXPECT_GE(attr_or(ev, "budget_bits", -1), 0.0) << ev.name;
  }
  EXPECT_EQ(layers, 3u);  // linear, activation, linear
  // The model-category wrapper spans are present too.
  const auto models = span_counts_by_name("model");
  EXPECT_EQ(models.at("model_eval"), 1u);
  EXPECT_EQ(models.at("infer"), 1u);
  EXPECT_EQ(models.at("encrypt_input"), 1u);
  EXPECT_EQ(models.at("decrypt_logits"), 1u);
}

TEST_F(TraceIntegrationTest, NoiseBudgetTelemetryMeasuresIntermediates) {
  RnsBackend backend(tiny_params());
  const ModelSpec spec = tiny_spec(8, 4, 3, 7);
  HeModelOptions options;
  options.encrypted_weights = true;
  options.trace_noise_budget = true;  // debug-key decrypt per layer
  const HeModel model(backend, spec, options);
  trace::clear();
  trace::set_enabled(true);
  (void)model.infer(random_image(8, 99));
  trace::set_enabled(false);
  std::size_t measured = 0;
  for (const trace::Event& ev : trace::snapshot()) {
    if (std::string(ev.cat) != "layer") continue;
    const double got = attr_or(ev, "measured_max", -1.0);
    const double bound = attr_or(ev, "value_bound", -1.0);
    ASSERT_GE(got, 0.0) << ev.name;
    ASSERT_GT(bound, 0.0) << ev.name;
    // The planner's bound must actually bound the decrypted magnitude.
    EXPECT_LE(got, bound * 1.01) << ev.name;
    ++measured;
  }
  EXPECT_EQ(measured, 3u);
}

TEST_F(TraceIntegrationTest, KernelSpansCoverKeySwitching) {
  RnsBackend backend(tiny_params());
  run_traced_inference(backend);
  const auto kernels = span_counts_by_name("kernel");
  ASSERT_FALSE(kernels.empty());
  EXPECT_GT(kernels.at("key_switch"), 0u);
  EXPECT_GT(kernels.count("rotate_batch") + kernels.count("rotate_hoist_decompose"),
            0u);
}

#endif  // PPHE_TRACE_COMPILED

}  // namespace
}  // namespace pphe
