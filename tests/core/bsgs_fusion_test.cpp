// Double-hoisted BSGS (DESIGN.md §14): the fused linear_bsgs path must
// produce the same logits as the legacy per-rotation schedule, and the
// kKswInner / kModDown counters must match the rotation plan exactly — one
// digit decomposition per unique operand, ONE mod-down per giant group plus
// the layer epilogue. The counter test is the fusion regression gate: a
// refactor that silently falls back to per-rotation key switching changes
// the counts even if the logits stay correct.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "ckks/rns_backend.hpp"
#include "common/prng.hpp"
#include "core/he_model.hpp"
#include "core/rotation_plan.hpp"

namespace pphe {
namespace {

CkksParams tiny_params() {
  CkksParams p = CkksParams::test_small();
  p.q_bit_sizes = {40, 26, 26, 26, 26, 26, 26};
  return p;
}

// Dense (every weight nonzero) stages so the diagonal set is full and the
// baby/giant split has something to optimize: linear 24->16, square-ish
// activation, linear 16->16. Depth 4 puts the first linear at a level with
// enough primes that the cost model keeps at least one giant group.
ModelSpec dense_spec(std::uint64_t seed) {
  Prng prng(seed);
  ModelSpec spec;
  spec.name = "bsgs-fusion";
  auto linear = [&](std::size_t i, std::size_t o) {
    ModelSpec::Stage s;
    s.kind = ModelSpec::Stage::Kind::kLinear;
    s.linear.in_dim = i;
    s.linear.out_dim = o;
    s.linear.weight.resize(i * o);
    s.linear.bias.resize(o);
    for (auto& w : s.linear.weight) {
      w = static_cast<float>(prng.normal() * 0.2 + 0.05);
    }
    for (auto& b : s.linear.bias) {
      b = static_cast<float>(prng.normal() * 0.1);
    }
    return s;
  };
  spec.stages.push_back(linear(24, 16));
  {
    ModelSpec::Stage s;
    s.kind = ModelSpec::Stage::Kind::kActivation;
    s.activation.features = 16;
    s.activation.degree = 2;
    s.activation.coeffs.resize(16 * 3);
    for (auto& c : s.activation.coeffs) {
      c = static_cast<float>(prng.normal() * 0.2);
    }
    spec.stages.push_back(std::move(s));
  }
  spec.stages.push_back(linear(16, 16));
  return spec;
}

std::vector<float> random_image(std::size_t n, std::uint64_t seed) {
  Prng prng(seed);
  std::vector<float> img(n);
  for (auto& v : img) v = static_cast<float>(prng.uniform_double());
  return img;
}

TEST(RotationPlanTest, UnfusedKeepsLegacySqrtSplit) {
  std::set<std::size_t> diag;
  for (std::size_t i = 0; i < 64; ++i) diag.insert(i);
  const RotationPlan p = RotationPlan::choose(diag, 64, 8, 12, false);
  EXPECT_FALSE(p.fused);
  EXPECT_EQ(p.giant, 16u);  // 1 << (log2(64)/2 + 1)
  // Single-hoisted babies each pay a mod-down; giants one each.
  EXPECT_EQ(p.moddowns, p.unique_babies + p.unique_giants);
}

TEST(RotationPlanTest, FusedSplitAndInvariants) {
  std::set<std::size_t> diag;
  for (std::size_t i = 0; i < 64; ++i) diag.insert(i);
  const RotationPlan at8 = RotationPlan::evaluate(diag, 8, 8, 12, true);
  EXPECT_EQ(at8.unique_babies, 7u);
  EXPECT_EQ(at8.unique_giants, 7u);
  EXPECT_EQ(at8.groups, 8u);
  EXPECT_EQ(at8.moddowns, 8u);          // one per nonzero giant + epilogue
  EXPECT_EQ(at8.decompositions, 8u);    // input hoist + one per giant

  const RotationPlan best = RotationPlan::choose(diag, 64, 8, 12, true);
  EXPECT_TRUE(best.fused);
  EXPECT_EQ(best.moddowns, best.unique_giants + 1);
  // The searched split can never cost more than any fixed candidate.
  EXPECT_LE(best.cost, at8.cost);
  EXPECT_LE(best.cost, RotationPlan::evaluate(diag, 16, 8, 12, true).cost);
}

TEST(RotationPlanTest, EmptyDiagonalSetIsFree) {
  const RotationPlan p = RotationPlan::choose({}, 64, 8, 12, true);
  EXPECT_EQ(p.groups, 0u);
  EXPECT_EQ(p.moddowns, 0u);
  EXPECT_EQ(p.unique_babies, 0u);
  EXPECT_EQ(p.unique_giants, 0u);
}

TEST(BsgsFusion, FusedMatchesUnfusedLogits) {
  RnsBackend backend(tiny_params());
  const ModelSpec spec = dense_spec(17);
  const auto img = random_image(24, 5);
  std::vector<double> reference;
  for (const bool fused : {false, true}) {
    HeModelOptions options;
    options.encrypted_weights = false;
    options.hoist_fusion = fused;
    const HeModel model(backend, spec, options);
    const InferenceResult result = model.infer(img);
    ASSERT_FALSE(result.degraded);
    if (!fused) {
      reference = result.logits;
      continue;
    }
    // The fused plan must actually engage on every linear stage.
    for (const auto& cost : model.cost_report()) {
      if (cost.name.rfind("linear", 0) == 0) {
        EXPECT_TRUE(cost.fused) << cost.name;
      }
    }
    ASSERT_EQ(result.logits.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      // Same math, different rounding points (one deferred mod-down instead
      // of one per rotation): equal within CKKS noise, not bitwise.
      EXPECT_NEAR(result.logits[i], reference[i], 5e-2) << "logit " << i;
    }
  }
}

TEST(BsgsFusion, OpCountersMatchCostReport) {
  RnsBackend backend(tiny_params());
  const ModelSpec spec = dense_spec(23);
  HeModelOptions options;
  options.encrypted_weights = false;
  const HeModel model(backend, spec, options);

  // Expected counter totals from the plan: linear stages contribute their
  // cost-report numbers; a degree-d activation relinearizes its d-1 power
  // products (each one key switch = one inner product + one mod-down; the
  // final accumulator stays size-2 with plaintext weights).
  const auto report = model.cost_report();
  ASSERT_EQ(report.size(), spec.stages.size());
  std::size_t want_inner = 0, want_moddown = 0;
  bool any_giant = false;
  for (std::size_t s = 0; s < spec.stages.size(); ++s) {
    if (spec.stages[s].kind == ModelSpec::Stage::Kind::kLinear) {
      ASSERT_TRUE(report[s].fused) << report[s].name;
      EXPECT_EQ(report[s].moddowns, report[s].giant_groups + 1)
          << report[s].name;
      want_inner += report[s].rotations;
      want_moddown += report[s].moddowns;
      any_giant = any_giant || report[s].giant_groups > 0;
    } else {
      const std::size_t relins = spec.stages[s].activation.degree - 1;
      want_inner += relins;
      want_moddown += relins;
    }
  }
  // At least one stage must keep a giant group, or the per-group mod-down
  // path is not exercised (the cost model picked all-babies everywhere).
  EXPECT_TRUE(any_giant);

  const auto inputs = model.encrypt_input(random_image(24, 9));
  backend.reset_op_counts();
  const Ciphertext out = model.eval(inputs);
  EXPECT_EQ(backend.op_count(OpKind::kKswInner), want_inner);
  EXPECT_EQ(backend.op_count(OpKind::kModDown), want_moddown);
  EXPECT_EQ(model.decrypt_logits(out).size(), 16u);
}

TEST(BsgsFusion, EncryptedWeightsFallBackToGenericPath) {
  RnsBackend backend(tiny_params());
  const ModelSpec spec = dense_spec(29);
  HeModelOptions options;
  options.encrypted_weights = true;
  const HeModel model(backend, spec, options);
  for (const auto& cost : model.cost_report()) {
    EXPECT_FALSE(cost.fused) << cost.name;
  }
  const InferenceResult result = model.infer(random_image(24, 3));
  ASSERT_FALSE(result.degraded);
  EXPECT_EQ(result.logits.size(), 16u);
}

}  // namespace
}  // namespace pphe
