// Chaos suite: sweep the full (site x applicable-kind) fault matrix through
// the hardened serving path and assert the robustness contract — every
// injected fault is either DETECTED (a typed error the recovery loop
// observed) or TOLERATED (retry converged on the fault-free prediction);
// never a silent misclassification. The sweep is deterministic under a
// fixed seed: two runs record identical attempt counts and error codes.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ckks/rns_backend.hpp"
#include "common/check.hpp"
#include "common/fault.hpp"
#include "common/prng.hpp"
#include "core/serving.hpp"

namespace pphe {
namespace {

CkksParams tiny_params() {
  CkksParams p = CkksParams::test_small();
  p.q_bit_sizes = {40, 26, 26, 26, 26, 26, 26};
  return p;
}

ModelSpec tiny_spec(std::uint64_t seed) {
  Prng prng(seed);
  ModelSpec spec;
  spec.name = "chaos-tiny";
  auto linear = [&](std::size_t i, std::size_t o) {
    ModelSpec::Stage s;
    s.kind = ModelSpec::Stage::Kind::kLinear;
    s.linear.in_dim = i;
    s.linear.out_dim = o;
    s.linear.weight.resize(i * o);
    s.linear.bias.resize(o);
    for (auto& w : s.linear.weight) {
      w = static_cast<float>(prng.normal() * 0.3);
    }
    for (auto& b : s.linear.bias) {
      b = static_cast<float>(prng.normal() * 0.1);
    }
    return s;
  };
  spec.stages.push_back(linear(12, 8));
  {
    ModelSpec::Stage s;
    s.kind = ModelSpec::Stage::Kind::kActivation;
    s.activation.features = 8;
    s.activation.degree = 2;
    s.activation.coeffs.resize(8 * 3);
    for (auto& c : s.activation.coeffs) {
      c = static_cast<float>(prng.normal() * 0.2);
    }
    spec.stages.push_back(std::move(s));
  }
  spec.stages.push_back(linear(8, 5));
  return spec;
}

std::vector<float> chaos_image() {
  Prng prng(7);
  std::vector<float> img(12);
  for (auto& v : img) v = static_cast<float>(prng.uniform_double());
  return img;
}

struct Rig {
  RnsBackend backend;
  HeModel model;
  int baseline_predicted;
  Rig()
      : backend(tiny_params()),
        model(backend, tiny_spec(47),
              [] {
                HeModelOptions o;
                o.encrypted_weights = false;
                return o;
              }()),
        baseline_predicted(model.infer(chaos_image()).predicted) {}
};

Rig& rig() {
  static Rig r;
  return r;
}

/// Codes the guards are allowed to surface for one fault cell. Each kind has
/// a primary detector; a few can legitimately trip a neighbouring check
/// depending on which byte/limb the seeded corruption lands on.
std::vector<ErrorCode> allowed_codes(fault::Site site, fault::Kind kind) {
  using fault::Kind;
  using fault::Site;
  if (site == Site::kWireUpload || site == Site::kWireDownload) {
    switch (kind) {
      case Kind::kTruncate:
        return {ErrorCode::kSerialization};
      case Kind::kLimbBitFlip:
      case Kind::kGarbage:
        return {ErrorCode::kChecksumMismatch, ErrorCode::kSerialization,
                ErrorCode::kIntegrity};
      default:
        break;
    }
  }
  if (site == Site::kEvalInput) {
    switch (kind) {
      case Kind::kLimbBitFlip:
        return {ErrorCode::kIntegrity};
      case Kind::kScaleMismatch:
        return {ErrorCode::kScaleMismatch};
      case Kind::kLevelMismatch:
        // The handle's level no longer matches the body's channel layout
        // (kIntegrity) or leaves the range the plan accepts.
        return {ErrorCode::kIntegrity, ErrorCode::kLevelMismatch};
      default:
        break;
    }
  }
  if (site == Site::kWorker) {
    return kind == Kind::kSlowWorker
               ? std::vector<ErrorCode>{ErrorCode::kTimeout}
               : std::vector<ErrorCode>{ErrorCode::kWorkerCrash};
  }
  return {};
}

struct CellResult {
  fault::Site site;
  fault::Kind kind;
  int attempts = 0;
  std::vector<ErrorCode> codes;
  bool ok = false;
  int predicted = -1;
};

CellResult run_cell(fault::Site site, fault::Kind kind, std::uint64_t seed) {
  fault::FaultSpec spec;
  spec.seed = seed;
  spec.slow_seconds = 3.0;  // only the slow-worker cell pays this
  spec.rules.push_back({site, kind, 1.0, /*budget=*/1});
  fault::configure(spec);

  ServingOptions options;
  options.max_retries = 2;
  options.watchdog_seconds = 2.0;
  const ServeOutcome outcome =
      serve_classify(rig().backend, rig().model, chaos_image(), options);
  const fault::FaultStats stats = fault::stats();
  fault::disarm();

  CellResult cell;
  cell.site = site;
  cell.kind = kind;
  cell.attempts = outcome.attempts;
  cell.ok = outcome.ok;
  cell.predicted = outcome.predicted;
  for (const ServeAttempt& a : outcome.faults) cell.codes.push_back(a.code);
  // The armed rule must actually have fired (budget 1, probability 1).
  EXPECT_EQ(stats.fired[static_cast<std::size_t>(site)]
                       [static_cast<std::size_t>(kind)],
            1u)
      << fault::site_name(site) << ":" << fault::kind_name(kind);
  return cell;
}

std::vector<CellResult> run_matrix(std::uint64_t seed) {
  std::vector<CellResult> results;
  for (std::size_t s = 0; s < fault::kSiteCount; ++s) {
    const auto site = static_cast<fault::Site>(s);
    for (const fault::Kind kind : fault::site_kinds(site)) {
      results.push_back(run_cell(site, kind, seed));
    }
  }
  return results;
}

TEST(ChaosMatrix, EveryFaultDetectedOrToleratedNeverSilent) {
  const std::vector<CellResult> results = run_matrix(1234);
  ASSERT_EQ(results.size(), 11u);  // 3 + 3 + 3 + 2 cells
  for (const CellResult& cell : results) {
    const std::string label = std::string(fault::site_name(cell.site)) + ":" +
                              fault::kind_name(cell.kind);
    // DETECTED: the failed attempt carries a typed code from the cell's
    // allowed set — the fault never slipped through a guard unnoticed.
    ASSERT_EQ(cell.codes.size(), 1u) << label;
    const auto allowed = allowed_codes(cell.site, cell.kind);
    bool code_ok = false;
    for (const ErrorCode c : allowed) code_ok |= (c == cell.codes[0]);
    EXPECT_TRUE(code_ok) << label << " surfaced unexpected code "
                         << error_code_name(cell.codes[0]);
    // TOLERATED: with the budget spent, the recompute attempt converges on
    // the fault-free prediction.
    EXPECT_TRUE(cell.ok) << label;
    EXPECT_EQ(cell.attempts, 2) << label;
    EXPECT_EQ(cell.predicted, rig().baseline_predicted) << label;
  }
}

TEST(ChaosMatrix, SweepIsDeterministicUnderAFixedSeed) {
  const std::vector<CellResult> a = run_matrix(77);
  const std::vector<CellResult> b = run_matrix(77);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].attempts, b[i].attempts) << i;
    EXPECT_EQ(a[i].ok, b[i].ok) << i;
    EXPECT_EQ(a[i].predicted, b[i].predicted) << i;
    ASSERT_EQ(a[i].codes.size(), b[i].codes.size()) << i;
    for (std::size_t j = 0; j < a[i].codes.size(); ++j) {
      EXPECT_EQ(a[i].codes[j], b[i].codes[j]) << i;
    }
  }
}

TEST(ChaosMatrix, GuardrailDegradationIsTypedAndFinal) {
  // The one fault class retry cannot heal: a noise budget below the floor.
  // Build a guarded model whose floor fresh inputs cannot meet.
  HeModelOptions options;
  options.encrypted_weights = false;
  options.min_noise_budget_bits = 1e6;
  const HeModel guarded(rig().backend, tiny_spec(47), options);
  const ServeOutcome outcome =
      serve_classify(rig().backend, guarded, chaos_image());
  EXPECT_FALSE(outcome.ok);
  EXPECT_TRUE(outcome.degraded);
  EXPECT_EQ(outcome.attempts, 1);  // no retry: recompute cannot add modulus
  ASSERT_EQ(outcome.faults.size(), 1u);
  EXPECT_EQ(outcome.faults[0].code, ErrorCode::kNoiseBudget);
  EXPECT_TRUE(outcome.logits.empty());
}

}  // namespace
}  // namespace pphe
