// In-process A/B gate for the robustness layer's hot-path cost: with fault
// injection compiled in but disarmed, the guarded eval path (input
// validation + noise-budget projection) must track the unguarded path
// within a small budget. The two arms alternate inside one process and the
// comparison uses the min over repetitions, so host load spikes hit both
// arms and cancel — unlike cross-run wall-clock diffs, which on a shared
// 1-core box swing by 20%. `run_benches.sh --quick` runs this test with
// OVERHEAD_TOLERANCE_PCT=2; the default stays looser so tier-1 ctest does
// not flake on a busy machine.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <limits>
#include <vector>

#include "ckks/rns_backend.hpp"
#include "common/fault.hpp"
#include "common/prng.hpp"
#include "core/he_model.hpp"

namespace pphe {
namespace {

CkksParams tiny_params() {
  CkksParams p = CkksParams::test_small();
  p.q_bit_sizes = {40, 26, 26, 26, 26, 26, 26};
  return p;
}

ModelSpec tiny_spec() {
  Prng prng(23);
  ModelSpec spec;
  spec.name = "overhead-tiny";
  auto linear = [&](std::size_t i, std::size_t o) {
    ModelSpec::Stage s;
    s.kind = ModelSpec::Stage::Kind::kLinear;
    s.linear.in_dim = i;
    s.linear.out_dim = o;
    s.linear.weight.resize(i * o);
    s.linear.bias.resize(o);
    for (auto& w : s.linear.weight) {
      w = static_cast<float>(prng.normal() * 0.3);
    }
    for (auto& b : s.linear.bias) {
      b = static_cast<float>(prng.normal() * 0.1);
    }
    return s;
  };
  spec.stages.push_back(linear(12, 8));
  {
    ModelSpec::Stage s;
    s.kind = ModelSpec::Stage::Kind::kActivation;
    s.activation.features = 8;
    s.activation.degree = 2;
    s.activation.coeffs.resize(8 * 3);
    for (auto& c : s.activation.coeffs) {
      c = static_cast<float>(prng.normal() * 0.2);
    }
    spec.stages.push_back(std::move(s));
  }
  spec.stages.push_back(linear(8, 5));
  return spec;
}

double time_batch(const HeModel& model, const std::vector<float>& img,
                  int evals) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < evals; ++i) {
    const InferenceResult r = model.infer(img);
    EXPECT_FALSE(r.degraded) << "guard fired in an overhead measurement";
  }
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

TEST(GuardOverhead, DisarmedGuardsStayWithinBudget) {
  ASSERT_FALSE(fault::armed()) << "overhead is defined with faults disarmed";
  RnsBackend backend(tiny_params());
  const ModelSpec spec = tiny_spec();

  HeModelOptions guarded_opts;
  guarded_opts.encrypted_weights = false;
  guarded_opts.min_noise_budget_bits = 1.0;  // guardrail armed, passes
  const HeModel guarded(backend, spec, guarded_opts);

  HeModelOptions raw_opts;
  raw_opts.encrypted_weights = false;
  raw_opts.validate_inputs = false;
  const HeModel raw(backend, spec, raw_opts);

  Prng prng(5);
  std::vector<float> img(12);
  for (auto& v : img) v = static_cast<float>(prng.uniform_double());

  // Warm both arms (operand caches, arena pools, code paths).
  time_batch(raw, img, 1);
  time_batch(guarded, img, 1);

  constexpr int kReps = 5;
  constexpr int kEvalsPerBatch = 3;
  double best_guarded = std::numeric_limits<double>::infinity();
  double best_raw = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    best_raw = std::min(best_raw, time_batch(raw, img, kEvalsPerBatch));
    best_guarded =
        std::min(best_guarded, time_batch(guarded, img, kEvalsPerBatch));
  }

  double tolerance_pct = 10.0;
  if (const char* env = std::getenv("OVERHEAD_TOLERANCE_PCT")) {
    tolerance_pct = std::atof(env);
  }
  const double overhead_pct = 100.0 * (best_guarded / best_raw - 1.0);
  RecordProperty("overhead_pct", std::to_string(overhead_pct));
  std::printf("guard overhead (disarmed, min over %d reps): %+.2f%% "
              "(budget %.1f%%)\n",
              kReps, overhead_pct, tolerance_pct);
  EXPECT_LE(best_guarded, best_raw * (1.0 + tolerance_pct / 100.0))
      << "guarded eval " << best_guarded << "s vs raw " << best_raw << "s";
}

}  // namespace
}  // namespace pphe
