#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace pphe {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.train_size = 800;
  cfg.test_size = 120;
  cfg.relu_epochs = 4;
  cfg.slaf_epochs = 3;
  cfg.he_samples = 2;
  cfg.cache_dir = ::testing::TempDir() + "/ppcnn-test-cache";
  cfg.verbose = false;
  return cfg;
}

TEST(ExperimentConfig, FlagParsing) {
  std::vector<std::string> storage = {"prog", "--paper", "--samples", "3",
                                      "--workers=8", "--quiet"};
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  const CliFlags flags(static_cast<int>(argv.size()), argv.data());
  const ExperimentConfig cfg = ExperimentConfig::from_flags(flags);
  EXPECT_TRUE(cfg.paper_profile);
  EXPECT_EQ(cfg.he_samples, 3u);
  EXPECT_EQ(cfg.workers, 8u);
  EXPECT_FALSE(cfg.verbose);
  EXPECT_EQ(cfg.ckks_params().degree, 1u << 14);
}

TEST(ExperimentConfig, DefaultIsFastProfile) {
  const ExperimentConfig cfg;
  EXPECT_EQ(cfg.ckks_params().degree, CkksParams::fast_profile().degree);
}

TEST(Experiment, BuildsDataAndCachesModels) {
  Experiment exp(tiny_config());
  EXPECT_EQ(exp.train_set().size(), 800u);
  EXPECT_EQ(exp.test_set().size(), 120u);

  const TrainedModel& m1 = exp.model(Arch::kCnn1, Activation::kSlaf);
  EXPECT_GT(m1.test_accuracy, 30.0f);
  // Second lookup returns the same object.
  const TrainedModel& m2 = exp.model(Arch::kCnn1, Activation::kSlaf);
  EXPECT_EQ(&m1, &m2);

  // A fresh Experiment with the same cache dir loads without retraining and
  // reaches the same accuracy.
  Experiment exp2(tiny_config());
  const TrainedModel& reloaded = exp2.model(Arch::kCnn1, Activation::kSlaf);
  EXPECT_NEAR(reloaded.test_accuracy, m1.test_accuracy, 1e-3);
}

TEST(Experiment, SpecIsCompilable) {
  Experiment exp(tiny_config());
  const ModelSpec spec = exp.spec(Arch::kCnn1, Activation::kSlaf);
  EXPECT_EQ(spec.stages.size(), 5u);
  EXPECT_EQ(spec.depth(), 9u);
}

TEST(MakeBackend, CreatesBothKinds) {
  const CkksParams p = CkksParams::test_small();
  EXPECT_EQ(make_backend("rns", p)->name(), "ckks-rns");
  EXPECT_EQ(make_backend("big", p)->name(), "ckks-bigint");
  EXPECT_THROW(make_backend("nope", p), Error);
}

TEST(RunEncryptedEval, EndToEndTinyModel) {
  // Full pipeline on a deliberately tiny spec and small ring: train-free
  // random weights, 2 encrypted samples.
  ExperimentConfig cfg = tiny_config();
  cfg.he_samples = 2;

  CkksParams params = CkksParams::test_small();
  params.q_bit_sizes = {40, 26, 26, 26, 26, 26, 26, 26, 26, 26};
  auto backend = make_backend("rns", params);

  Experiment exp(cfg);
  const ModelSpec spec = exp.spec(Arch::kCnn1, Activation::kSlaf);
  HeModelOptions options;
  options.encrypted_weights = false;  // keep the test fast
  const EncryptedEvalResult result =
      run_encrypted_eval(*backend, spec, options, exp.test_set(), cfg);

  EXPECT_EQ(result.samples, 2u);
  EXPECT_EQ(result.eval_latency.count(), 2u);
  EXPECT_GT(result.eval_latency.avg(), 0.0);
  EXPECT_GT(result.parallel_latency.avg(), 0.0);
  // The simulated parallel latency can never exceed the measured one.
  EXPECT_LE(result.parallel_latency.avg(), result.eval_latency.avg() * 1.05);
  EXPECT_GT(result.spec_accuracy, 20.0);
  // Encrypted and plaintext predictions agree (RNS preserves accuracy).
  EXPECT_DOUBLE_EQ(result.match_rate, 100.0);
  EXPECT_LT(result.max_logit_err, 0.3);
}

}  // namespace
}  // namespace pphe
