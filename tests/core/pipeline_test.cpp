#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>

#include "common/check.hpp"
#include "common/fault.hpp"

namespace pphe {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.train_size = 800;
  cfg.test_size = 120;
  cfg.relu_epochs = 4;
  cfg.slaf_epochs = 3;
  cfg.he_samples = 2;
  cfg.cache_dir = ::testing::TempDir() + "/ppcnn-test-cache";
  cfg.verbose = false;
  return cfg;
}

TEST(ExperimentConfig, FlagParsing) {
  std::vector<std::string> storage = {"prog", "--paper", "--samples", "3",
                                      "--workers=8", "--quiet"};
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  const CliFlags flags(static_cast<int>(argv.size()), argv.data());
  const ExperimentConfig cfg = ExperimentConfig::from_flags(flags);
  EXPECT_TRUE(cfg.paper_profile);
  EXPECT_EQ(cfg.he_samples, 3u);
  EXPECT_EQ(cfg.workers, 8u);
  EXPECT_FALSE(cfg.verbose);
  EXPECT_EQ(cfg.ckks_params().degree, 1u << 14);
}

TEST(ExperimentConfig, DefaultIsFastProfile) {
  const ExperimentConfig cfg;
  EXPECT_EQ(cfg.ckks_params().degree, CkksParams::fast_profile().degree);
}

TEST(Experiment, BuildsDataAndCachesModels) {
  Experiment exp(tiny_config());
  EXPECT_EQ(exp.train_set().size(), 800u);
  EXPECT_EQ(exp.test_set().size(), 120u);

  const TrainedModel& m1 = exp.model(Arch::kCnn1, Activation::kSlaf);
  EXPECT_GT(m1.test_accuracy, 30.0f);
  // Second lookup returns the same object.
  const TrainedModel& m2 = exp.model(Arch::kCnn1, Activation::kSlaf);
  EXPECT_EQ(&m1, &m2);

  // A fresh Experiment with the same cache dir loads without retraining and
  // reaches the same accuracy.
  Experiment exp2(tiny_config());
  const TrainedModel& reloaded = exp2.model(Arch::kCnn1, Activation::kSlaf);
  EXPECT_NEAR(reloaded.test_accuracy, m1.test_accuracy, 1e-3);
}

TEST(Experiment, CorruptCacheFileIsACacheMissNotACrash) {
  ExperimentConfig cfg = tiny_config();
  cfg.cache_dir = ::testing::TempDir() + "/ppcnn-corrupt-cache";
  std::filesystem::remove_all(cfg.cache_dir);
  {
    // Populate the cache, then damage the weight file several ways.
    Experiment exp(cfg);
    (void)exp.model(Arch::kCnn1, Activation::kSlaf);
  }
  std::filesystem::path weights;
  for (const auto& entry : std::filesystem::directory_iterator(cfg.cache_dir)) {
    weights = entry.path();
  }
  ASSERT_FALSE(weights.empty());
  const auto size = std::filesystem::file_size(weights);

  const auto retrains_cleanly = [&] {
    Experiment exp(cfg);
    const TrainedModel& m = exp.model(Arch::kCnn1, Activation::kSlaf);
    EXPECT_GT(m.test_accuracy, 30.0f);
  };
  // Truncated file (partial write / disk full).
  std::filesystem::resize_file(weights, size / 2);
  retrains_cleanly();
  // NaN payload (bit rot that keeps the structure intact).
  {
    std::fstream f(weights, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(64);
    const float nan = std::numeric_limits<float>::quiet_NaN();
    f.write(reinterpret_cast<const char*>(&nan), sizeof(nan));
  }
  retrains_cleanly();
  // Garbage header.
  {
    std::ofstream f(weights, std::ios::binary | std::ios::trunc);
    f << "not a weight file";
  }
  retrains_cleanly();
  // Each recovery rewrote a good cache: the final load succeeds.
  Experiment exp(cfg);
  EXPECT_GT(exp.model(Arch::kCnn1, Activation::kSlaf).test_accuracy, 30.0f);
}

TEST(ExperimentConfig, FaultsFlagArmsThePlan) {
  std::vector<std::string> storage = {
      "prog", "--quiet", "--faults=seed=3,wire.upload:truncate*1"};
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  const CliFlags flags(static_cast<int>(argv.size()), argv.data());
  const ExperimentConfig cfg = ExperimentConfig::from_flags(flags);
  EXPECT_EQ(cfg.faults, "seed=3,wire.upload:truncate*1");
  EXPECT_TRUE(fault::armed());
  fault::disarm();
  EXPECT_FALSE(fault::armed());
}

TEST(Experiment, SpecIsCompilable) {
  Experiment exp(tiny_config());
  const ModelSpec spec = exp.spec(Arch::kCnn1, Activation::kSlaf);
  EXPECT_EQ(spec.stages.size(), 5u);
  EXPECT_EQ(spec.depth(), 9u);
}

TEST(MakeBackend, CreatesBothKinds) {
  const CkksParams p = CkksParams::test_small();
  EXPECT_EQ(make_backend("rns", p)->name(), "ckks-rns");
  EXPECT_EQ(make_backend("big", p)->name(), "ckks-bigint");
  EXPECT_THROW(make_backend("nope", p), Error);
}

TEST(RunEncryptedEval, EndToEndTinyModel) {
  // Full pipeline on a deliberately tiny spec and small ring: train-free
  // random weights, 2 encrypted samples.
  ExperimentConfig cfg = tiny_config();
  cfg.he_samples = 2;

  CkksParams params = CkksParams::test_small();
  params.q_bit_sizes = {40, 26, 26, 26, 26, 26, 26, 26, 26, 26};
  auto backend = make_backend("rns", params);

  Experiment exp(cfg);
  const ModelSpec spec = exp.spec(Arch::kCnn1, Activation::kSlaf);
  HeModelOptions options;
  options.encrypted_weights = false;  // keep the test fast
  const EncryptedEvalResult result =
      run_encrypted_eval(*backend, spec, options, exp.test_set(), cfg);

  EXPECT_EQ(result.samples, 2u);
  EXPECT_EQ(result.eval_latency.count(), 2u);
  EXPECT_GT(result.eval_latency.avg(), 0.0);
  EXPECT_GT(result.parallel_latency.avg(), 0.0);
  // The simulated parallel latency can never exceed the measured one.
  EXPECT_LE(result.parallel_latency.avg(), result.eval_latency.avg() * 1.05);
  EXPECT_GT(result.spec_accuracy, 20.0);
  // Encrypted and plaintext predictions agree (RNS preserves accuracy).
  EXPECT_DOUBLE_EQ(result.match_rate, 100.0);
  EXPECT_LT(result.max_logit_err, 0.3);
}

}  // namespace
}  // namespace pphe
