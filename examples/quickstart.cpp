// Quickstart: the smallest complete use of the library.
//
//   1. train CNN1 with the CNN-HE-SLAF protocol (ReLU pre-train, SLAF swap,
//      short re-train) on the bundled synthetic MNIST;
//   2. compile it onto the CKKS-RNS backend;
//   3. encrypt one image, classify it blind, decrypt the logits.
//
// Run:  ./quickstart            (fast profile, ~a minute on a laptop core)
//       ./quickstart --paper    (the paper's Table II parameters)
//       ./quickstart --trace-out=trace.json   (per-op/per-layer trace,
//                                              chrome://tracing / Perfetto)

#include <cstdio>

#include "ckks/security.hpp"
#include "core/pipeline.hpp"

using namespace pphe;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const std::string trace_path = init_tracing_from_flags(flags);
  ExperimentConfig cfg = ExperimentConfig::from_flags(flags);
  cfg.train_size = static_cast<std::size_t>(flags.get_int("train-size", 2000));
  cfg.relu_epochs = static_cast<std::size_t>(flags.get_int("epochs", 5));
  cfg.slaf_epochs = 4;

  std::printf("== ppcnn quickstart ==\n");
  const CkksParams params = cfg.ckks_params();
  std::printf("CKKS-RNS parameters: %s\n", params.describe().c_str());
  std::printf("%s\n\n", describe_security(params).c_str());

  // 1. Train (cached across runs in ./ppcnn-cache).
  Experiment exp(cfg);
  const TrainedModel& model = exp.model(Arch::kCnn1, Activation::kSlaf);
  std::printf("\nCNN1-HE-SLAF trained: train %.2f%%, test %.2f%% (plaintext)\n",
              static_cast<double>(model.train_accuracy),
              static_cast<double>(model.test_accuracy));

  // 2. Compile onto the homomorphic backend.
  auto backend = make_backend("rns", params);
  const ModelSpec spec = compile_model(model);
  HeModelOptions options;
  options.encrypted_weights = true;  // eq. (1): weights are ciphertexts too
  options.rns_branches = 3;          // Fig. 5: three decomposition branches
  std::printf("compiling %s onto %s (this encrypts every weight diagonal "
              "and generates Galois keys)...\n",
              spec.name.c_str(), backend->name().c_str());
  const HeModel he_model(*backend, spec, options);
  std::printf("compiled: %d rescale levels used, %zu rotation keys\n\n",
              he_model.levels_used(), he_model.rotation_steps().size());

  // 3. One blind classification.
  const auto& test = exp.test_set();
  const float* img = test.images.data();
  const InferenceResult result =
      he_model.infer(std::vector<float>(img, img + 784));
  std::printf("encrypt %.3f s | blind eval %.2f s | decrypt %.3f s\n",
              result.encrypt_seconds, result.eval_seconds,
              result.decrypt_seconds);
  std::printf("decrypted logits:");
  for (const double v : result.logits) std::printf(" %+.2f", v);
  std::printf("\npredicted digit %d (true label %d)\n", result.predicted,
              test.labels[0]);
  if (!finish_tracing(trace_path)) return 1;
  return result.predicted == test.labels[0] ? 0 : 1;
}
