// Fig. 1 as two actual parties exchanging BYTES: the "client" and the
// "cloud" run in one process but communicate exclusively through the
// serialized wire format (ckks/serialize.hpp) — the cloud half never touches
// the secret key object, only ciphertext byte strings.
//
// The round trip runs through the hardened serving layer (core/serving.hpp):
// checksummed wire sections, pre-eval ciphertext validation, the
// noise-budget guardrail, a per-request watchdog, and bounded
// retry-with-recompute. Pass --faults=<spec> to watch the recovery path,
// e.g.:
//   client_server --faults="seed=7,wire.upload:bitflip*1"
//   client_server --faults="worker:crash*1" --watchdog-ms=30000

#include <cstdio>

#include "ckks/rns_backend.hpp"
#include "ckks/serialize.hpp"
#include "common/fault.hpp"
#include "core/pipeline.hpp"
#include "core/serving.hpp"

using namespace pphe;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  ExperimentConfig cfg = ExperimentConfig::from_flags(flags);
  cfg.train_size = static_cast<std::size_t>(flags.get_int("train-size", 2000));

  std::printf("== client/server round trip over serialized ciphertexts ==\n\n");
  Experiment exp(cfg);
  const TrainedModel& trained = exp.model(Arch::kCnn1, Activation::kSlaf);

  RnsBackend backend(cfg.ckks_params());
  HeModelOptions options;
  options.encrypted_weights = true;
  options.rns_branches = 3;
  options.min_noise_budget_bits = flags.get_double("min-budget-bits", 1.0);
  const HeModel model(backend, compile_model(trained), options);

  const float* img = exp.test_set().images.data();
  const std::vector<float> image(img, img + 784);
  {
    const auto inputs = model.encrypt_input(image);
    std::size_t upload_bytes = 0;
    for (const auto& ct : inputs) {
      upload_bytes += ciphertext_byte_size(backend, ct);
    }
    std::printf("[client] upload: %zu branch ciphertexts, %.2f MiB total\n",
                inputs.size(),
                static_cast<double>(upload_bytes) / (1024.0 * 1024.0));
  }

  ServingOptions serving;
  serving.max_retries = static_cast<int>(flags.get_int("max-retries", 2));
  serving.watchdog_seconds = flags.get_double("watchdog-ms", 60000.0) / 1000.0;

  const ServeOutcome outcome = serve_classify(backend, model, image, serving);
  for (const ServeAttempt& a : outcome.faults) {
    std::printf("[serve]  detected %s fault — %s\n",
                error_code_name(a.code),
                outcome.ok ? "re-encrypting and retrying" : "giving up");
  }
  if (outcome.degraded) {
    std::printf("[serve]  DEGRADED: noise budget below floor; no logits "
                "returned\n");
    return 1;
  }
  if (!outcome.ok) {
    std::printf("[serve]  FAILED after %d attempts\n", outcome.attempts);
    return 1;
  }
  std::printf("[client] decrypted prediction: %d (true label %d, %d "
              "attempt%s)\n",
              outcome.predicted, exp.test_set().labels[0], outcome.attempts,
              outcome.attempts == 1 ? "" : "s");
  std::printf(
      "\nnote the asymmetry Fig. 1 relies on: the download is smaller than\n"
      "the upload (the logits ciphertext sits at a lower level after %d\n"
      "rescales, so it carries fewer residue channels).\n",
      model.levels_used());
  return outcome.predicted == exp.test_set().labels[0] ? 0 : 1;
}
