// Fig. 1 as two actual parties exchanging BYTES: the "client" and the
// "cloud" run in one process but communicate exclusively through the
// serialized wire format (ckks/serialize.hpp) — the cloud half never touches
// the secret key object, only ciphertext byte strings.

#include <cstdio>

#include "ckks/rns_backend.hpp"
#include "ckks/serialize.hpp"
#include "core/pipeline.hpp"

using namespace pphe;

namespace {

/// The cloud: holds the compiled encrypted model, consumes input bytes,
/// produces logits bytes. (In a real deployment this runs in a different
/// trust domain; the evaluation key material inside the backend is public.)
struct Cloud {
  const RnsBackend& backend;
  const HeModel& model;

  std::string classify(const std::vector<std::string>& branch_bytes) const {
    std::vector<Ciphertext> inputs;
    inputs.reserve(branch_bytes.size());
    for (const auto& bytes : branch_bytes) {
      inputs.push_back(ciphertext_from_string(bytes, backend));
    }
    const Ciphertext logits = model.eval(inputs);
    return ciphertext_to_string(backend, logits);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  ExperimentConfig cfg = ExperimentConfig::from_flags(flags);
  cfg.train_size = static_cast<std::size_t>(flags.get_int("train-size", 2000));

  std::printf("== client/server round trip over serialized ciphertexts ==\n\n");
  Experiment exp(cfg);
  const TrainedModel& trained = exp.model(Arch::kCnn1, Activation::kSlaf);

  RnsBackend backend(cfg.ckks_params());
  HeModelOptions options;
  options.encrypted_weights = true;
  options.rns_branches = 3;
  const HeModel model(backend, compile_model(trained), options);
  const Cloud cloud{backend, model};

  // Client side: encrypt, serialize, "send".
  const float* img = exp.test_set().images.data();
  const std::vector<float> image(img, img + 784);
  const auto inputs = model.encrypt_input(image);
  std::vector<std::string> upload;
  std::size_t upload_bytes = 0;
  for (const auto& ct : inputs) {
    upload.push_back(ciphertext_to_string(backend, ct));
    upload_bytes += upload.back().size();
  }
  std::printf("[client] uploaded %zu branch ciphertexts, %.2f MiB total\n",
              upload.size(),
              static_cast<double>(upload_bytes) / (1024.0 * 1024.0));

  // Cloud side: bytes in, bytes out.
  const std::string download = cloud.classify(upload);
  std::printf("[cloud]  returned encrypted logits, %.2f MiB\n",
              static_cast<double>(download.size()) / (1024.0 * 1024.0));

  // Client side: deserialize and decrypt.
  const Ciphertext logits_ct = ciphertext_from_string(download, backend);
  const auto logits = model.decrypt_logits(logits_ct);
  const auto pred = static_cast<int>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
  std::printf("[client] decrypted prediction: %d (true label %d)\n", pred,
              exp.test_set().labels[0]);
  std::printf(
      "\nnote the asymmetry Fig. 1 relies on: the download is smaller than\n"
      "the upload (the logits ciphertext sits at a lower level after %d\n"
      "rescales, so it carries fewer residue channels).\n",
      model.levels_used());
  return pred == exp.test_set().labels[0] ? 0 : 1;
}
