// Fig. 1 as two actual parties exchanging BYTES: the "client" and the
// "cloud" run in one process but communicate exclusively through the
// serialized wire format (ckks/serialize.hpp) — the cloud half never touches
// the secret key object, only ciphertext byte strings.
//
// Two modes:
//
//  * default: ONE hardened round trip (core/serving.hpp) — checksummed wire
//    sections, pre-eval ciphertext validation, the noise-budget guardrail, a
//    per-request watchdog, and bounded retry-with-recompute. Pass
//    --faults=<spec> to watch the recovery path, e.g.:
//      client_server --faults="seed=7,wire.upload:bitflip*1"
//      client_server --faults="worker:crash*1" --watchdog-ms=30000
//
//  * --serve: the batch-serving front end (src/serve/) — a BatchServer
//    coalesces concurrent client requests into slot-packed SIMD batches and
//    evaluates each batch through the same hardened round trip. A
//    multi-threaded synthetic load generator plays the clients:
//      client_server --serve --clients=4 --requests=32 --workers=2
//                    --max-batch=8 --linger-ms=5 --queue-cap=64

#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "ckks/rns_backend.hpp"
#include "ckks/serialize.hpp"
#include "common/fault.hpp"
#include "common/stats.hpp"
#include "core/pipeline.hpp"
#include "core/serving.hpp"
#include "serve/server.hpp"

using namespace pphe;

namespace {

int run_single(const CliFlags& flags, Experiment& exp, RnsBackend& backend) {
  HeModelOptions options;
  options.encrypted_weights = true;
  options.rns_branches = 3;
  options.min_noise_budget_bits = flags.get_double("min-budget-bits", 1.0);
  const HeModel model(backend, exp.spec(Arch::kCnn1, Activation::kSlaf),
                      options);

  const float* img = exp.test_set().images.data();
  const std::vector<float> image(img, img + 784);
  {
    const auto inputs = model.encrypt_input(image);
    std::size_t upload_bytes = 0;
    for (const auto& ct : inputs) {
      upload_bytes += ciphertext_byte_size(backend, ct);
    }
    std::printf("[client] upload: %zu branch ciphertexts, %.2f MiB total\n",
                inputs.size(),
                static_cast<double>(upload_bytes) / (1024.0 * 1024.0));
  }

  ServingOptions serving;
  serving.max_retries = static_cast<int>(flags.get_int("max-retries", 2));
  serving.watchdog_seconds = flags.get_double("watchdog-ms", 60000.0) / 1000.0;

  const ServeOutcome outcome = serve_classify(backend, model, image, serving);
  for (const ServeAttempt& a : outcome.faults) {
    std::printf("[serve]  detected %s fault — %s\n",
                error_code_name(a.code),
                outcome.ok ? "re-encrypting and retrying" : "giving up");
  }
  if (outcome.degraded) {
    std::printf("[serve]  DEGRADED: noise budget below floor; no logits "
                "returned\n");
    return 1;
  }
  if (!outcome.ok) {
    std::printf("[serve]  FAILED after %d attempts\n", outcome.attempts);
    return 1;
  }
  std::printf("[client] decrypted prediction: %d (true label %d, %d "
              "attempt%s)\n",
              outcome.predicted, exp.test_set().labels[0], outcome.attempts,
              outcome.attempts == 1 ? "" : "s");
  std::printf(
      "\nnote the asymmetry Fig. 1 relies on: the download is smaller than\n"
      "the upload (the logits ciphertext sits at a lower level after %d\n"
      "rescales, so it carries fewer residue channels).\n",
      model.levels_used());
  return outcome.predicted == exp.test_set().labels[0] ? 0 : 1;
}

int run_serve(const CliFlags& flags, Experiment& exp, RnsBackend& backend) {
  // Plain weights for the serving demo: the throughput story is about
  // slot-packed batching; the encrypted-weights ablation lives in the
  // single-shot mode above and the table benches.
  HeModelOptions base;
  base.encrypted_weights = false;
  serve::BatchModelSet models(backend, exp.spec(Arch::kCnn1, Activation::kSlaf),
                              base);

  serve::ServerOptions opts;
  opts.workers = static_cast<std::size_t>(flags.get_int("workers", 2));
  opts.max_batch = static_cast<std::size_t>(flags.get_int("max-batch", 8));
  opts.linger_ms = flags.get_double("linger-ms", 5.0);
  opts.queue_capacity =
      static_cast<std::size_t>(flags.get_int("queue-cap", 64));
  opts.serving.max_retries =
      static_cast<int>(flags.get_int("max-retries", 2));
  opts.serving.watchdog_seconds =
      flags.get_double("watchdog-ms", 60000.0) / 1000.0;

  const std::size_t clients =
      static_cast<std::size_t>(flags.get_int("clients", 4));
  const std::size_t requests =
      static_cast<std::size_t>(flags.get_int("requests", 32));

  serve::BatchServer server(models, opts);
  std::printf("[server] up: %zu worker%s, max batch %zu (model set holds up "
              "to %zu), linger %.1f ms, queue capacity %zu\n",
              server.options().workers, server.options().workers == 1 ? "" : "s",
              server.options().max_batch, models.max_batch(),
              server.options().linger_ms, server.options().queue_capacity);
  std::printf("[load]   %zu client thread%s submitting %zu requests total\n\n",
              clients, clients == 1 ? "" : "s", requests);

  const Dataset& test = exp.test_set();
  std::mutex agg_mutex;
  LatencyStats latency;
  std::size_t correct = 0, answered = 0, overloaded = 0;

  Stopwatch wall;
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (std::size_t r = c; r < requests; r += clients) {
        const std::size_t idx = r % test.size();
        const float* px = test.images.data() + idx * 784;
        Stopwatch sw;
        std::future<serve::ServeReply> future;
        try {
          future = server.submit(std::vector<float>(px, px + 784));
        } catch (const Error& e) {
          if (e.code() != ErrorCode::kOverloaded) throw;
          std::lock_guard<std::mutex> lock(agg_mutex);
          ++overloaded;
          continue;  // a real client would back off and resubmit
        }
        const serve::ServeReply reply = future.get();
        std::lock_guard<std::mutex> lock(agg_mutex);
        latency.add(sw.seconds());
        if (reply.ok) {
          ++answered;
          if (reply.predicted == test.labels[idx]) ++correct;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = wall.seconds();
  server.shutdown();

  const serve::ServerStats stats = server.stats();
  std::printf("[load]   done in %.2f s: %zu answered (%zu correct), %zu "
              "rejected kOverloaded\n",
              seconds, answered, correct, overloaded);
  if (!latency.empty()) {
    std::printf("[load]   throughput %.2f img/s; latency p50 %.0f ms, "
                "p99 %.0f ms\n",
                static_cast<double>(answered) / seconds,
                latency.percentile(0.5) * 1e3, latency.percentile(0.99) * 1e3);
  }
  std::printf("[server] %llu batches over %llu requests",
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.completed));
  for (const auto& [size, count] : stats.batch_sizes) {
    std::printf("  %zux%llu", size, static_cast<unsigned long long>(count));
  }
  std::printf("  (retries %llu)\n",
              static_cast<unsigned long long>(stats.retries));
  std::printf("[server] queue p99 %.1f ms, eval p99 %.0f ms\n",
              stats.queue_ns.percentile_ns(0.99) * 1e-6,
              stats.eval_ns.percentile_ns(0.99) * 1e-6);
  return answered > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  ExperimentConfig cfg = ExperimentConfig::from_flags(flags);
  cfg.train_size = static_cast<std::size_t>(flags.get_int("train-size", 2000));

  const bool serve_mode = flags.has("serve");
  std::printf(serve_mode
                  ? "== batch serving over serialized ciphertexts ==\n\n"
                  : "== client/server round trip over serialized "
                    "ciphertexts ==\n\n");
  Experiment exp(cfg);
  exp.model(Arch::kCnn1, Activation::kSlaf);  // train (or load from cache)

  RnsBackend backend(cfg.ckks_params());
  return serve_mode ? run_serve(flags, exp, backend)
                    : run_single(flags, exp, backend);
}
