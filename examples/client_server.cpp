// Fig. 1 as two actual parties exchanging BYTES: the "client" and the
// "cloud" communicate exclusively through serialized wire formats — the
// cloud half never touches the secret key object, only ciphertext byte
// strings (and, in the network modes, framed protocol bytes on a real TCP
// socket).
//
// Modes:
//
//  * default: ONE hardened round trip (core/serving.hpp) — checksummed wire
//    sections, pre-eval ciphertext validation, the noise-budget guardrail, a
//    per-request watchdog, and bounded retry-with-recompute. Pass
//    --faults=<spec> to watch the recovery path, e.g.:
//      client_server --faults="seed=7,wire.upload:bitflip*1"
//      client_server --faults="worker:crash*1" --watchdog-ms=30000
//
//  * --listen[=port]: bring up the networked serving stack (src/serve/net/)
//    on a loopback TCP port — BatchServer + NetServer: versioned handshake,
//    key registry, tiered admission, and GET /metrics on the same port.
//    Runs until --serve-seconds elapses (default 60).
//      client_server --listen=7001 --workers=2 --max-batch=8
//
//  * --connect host:port: the multi-threaded load generator as a NETWORK
//    client — each client thread opens its own connection, completes the
//    handshake, registers keys, and streams framed requests.
//      client_server --connect 127.0.0.1:7001 --clients=4 --requests=32
//
//  * --serve: self-contained loopback demo — starts the NetServer on an
//    ephemeral port, drives it with the network load generator in the same
//    process, then scrapes /metrics and prints a sample. This is the
//    in-process batching demo of earlier revisions, now over real sockets.
//      client_server --serve --clients=4 --requests=32 --workers=2
//                    --max-batch=8 --linger-ms=5 --queue-cap=64

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "ckks/rns_backend.hpp"
#include "ckks/serialize.hpp"
#include "common/fault.hpp"
#include "common/stats.hpp"
#include "core/pipeline.hpp"
#include "core/serving.hpp"
#include "serve/net/net_client.hpp"
#include "serve/net/net_server.hpp"
#include "serve/server.hpp"

using namespace pphe;

namespace {

int run_single(const CliFlags& flags, Experiment& exp, RnsBackend& backend) {
  HeModelOptions options;
  options.encrypted_weights = true;
  options.rns_branches = 3;
  options.min_noise_budget_bits = flags.get_double("min-budget-bits", 1.0);
  const HeModel model(backend, exp.spec(Arch::kCnn1, Activation::kSlaf),
                      options);

  const float* img = exp.test_set().images.data();
  const std::vector<float> image(img, img + 784);
  {
    const auto inputs = model.encrypt_input(image);
    std::size_t upload_bytes = 0;
    for (const auto& ct : inputs) {
      upload_bytes += ciphertext_byte_size(backend, ct);
    }
    std::printf("[client] upload: %zu branch ciphertexts, %.2f MiB total\n",
                inputs.size(),
                static_cast<double>(upload_bytes) / (1024.0 * 1024.0));
  }

  ServingOptions serving;
  serving.max_retries = static_cast<int>(flags.get_int("max-retries", 2));
  serving.watchdog_seconds = flags.get_double("watchdog-ms", 60000.0) / 1000.0;

  const ServeOutcome outcome = serve_classify(backend, model, image, serving);
  for (const ServeAttempt& a : outcome.faults) {
    std::printf("[serve]  detected %s fault — %s\n",
                error_code_name(a.code),
                outcome.ok ? "re-encrypting and retrying" : "giving up");
  }
  if (outcome.degraded) {
    std::printf("[serve]  DEGRADED: noise budget below floor; no logits "
                "returned\n");
    return 1;
  }
  if (!outcome.ok) {
    std::printf("[serve]  FAILED after %d attempts\n", outcome.attempts);
    return 1;
  }
  std::printf("[client] decrypted prediction: %d (true label %d, %d "
              "attempt%s)\n",
              outcome.predicted, exp.test_set().labels[0], outcome.attempts,
              outcome.attempts == 1 ? "" : "s");
  std::printf(
      "\nnote the asymmetry Fig. 1 relies on: the download is smaller than\n"
      "the upload (the logits ciphertext sits at a lower level after %d\n"
      "rescales, so it carries fewer residue channels).\n",
      model.levels_used());
  return outcome.predicted == exp.test_set().labels[0] ? 0 : 1;
}

serve::ServerOptions server_options_from_flags(const CliFlags& flags) {
  serve::ServerOptions opts;
  opts.workers = static_cast<std::size_t>(flags.get_int("workers", 2));
  opts.max_batch = static_cast<std::size_t>(flags.get_int("max-batch", 8));
  opts.linger_ms = flags.get_double("linger-ms", 5.0);
  opts.queue_capacity =
      static_cast<std::size_t>(flags.get_int("queue-cap", 64));
  opts.serving.max_retries =
      static_cast<int>(flags.get_int("max-retries", 2));
  opts.serving.watchdog_seconds =
      flags.get_double("watchdog-ms", 60000.0) / 1000.0;
  return opts;
}

/// The multi-threaded load generator, speaking the framed protocol over
/// loopback TCP: each client thread owns one connection (handshake, key
/// registration, framed request/reply stream), exactly what a remote party
/// would run.
int run_net_load(const CkksParams& params, const std::string& host,
                 std::uint16_t port, Experiment& exp, const CliFlags& flags) {
  const std::size_t clients =
      static_cast<std::size_t>(flags.get_int("clients", 4));
  const std::size_t requests =
      static_cast<std::size_t>(flags.get_int("requests", 32));
  const auto tier = static_cast<serve::net::Tier>(
      flags.get_int("tier", 1));  // 0 batch, 1 standard, 2 premium

  std::printf("[load]   %zu network client%s -> %s:%u, %zu requests total, "
              "%s tier\n\n",
              clients, clients == 1 ? "" : "s", host.c_str(), port, requests,
              serve::net::tier_name(tier));

  const Dataset& test = exp.test_set();
  std::mutex agg_mutex;
  LatencyStats latency;
  std::size_t correct = 0, answered = 0, shed = 0, evicted = 0;

  Stopwatch wall;
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::net::NetClientOptions copts;
      copts.host = host;
      copts.port = port;
      copts.tier = tier;
      copts.name = "client_server-load-" + std::to_string(c);
      serve::net::NetClient client(params, copts);
      // Register this session's evaluation keys before any request (an
      // empty step list still pins the relinearization key's bytes).
      client.upload_keys({});
      for (std::size_t r = c; r < requests; r += clients) {
        const std::size_t idx = r % test.size();
        const float* px = test.images.data() + idx * 784;
        Stopwatch sw;
        const serve::net::NetReply reply =
            client.classify(std::vector<float>(px, px + 784));
        std::lock_guard<std::mutex> lock(agg_mutex);
        if (reply.rejected) {
          if (reply.error == ErrorCode::kOverloaded) ++shed;
          if (reply.error == ErrorCode::kKeyEvicted) ++evicted;
          continue;  // a real client backs off and resubmits
        }
        latency.add(sw.seconds());
        if (reply.ok) {
          ++answered;
          if (reply.predicted == test.labels[idx]) ++correct;
        }
      }
      client.bye();
    });
  }
  for (auto& t : threads) t.join();
  const double seconds = wall.seconds();

  std::printf("[load]   done in %.2f s: %zu answered (%zu correct), %zu shed "
              "kOverloaded, %zu key-evicted\n",
              seconds, answered, correct, shed, evicted);
  if (!latency.empty()) {
    std::printf("[load]   throughput %.2f img/s; round-trip p50 %.0f ms, "
                "p99 %.0f ms\n",
                static_cast<double>(answered) / seconds,
                latency.percentile(0.5) * 1e3, latency.percentile(0.99) * 1e3);
  }
  return answered > 0 ? 0 : 1;
}

/// Scrapes GET /metrics from the serving port over a raw HTTP/1.0 request
/// (the same thing `curl` or a Prometheus agent would send) and prints a
/// small sample of the exposition.
void scrape_metrics(const std::string& host, std::uint16_t port) {
  serve::net::TcpConn conn = serve::net::tcp_connect(host, port, 5.0);
  conn.send_all("GET /metrics HTTP/1.0\r\n\r\n");
  std::string text;
  char buf[4096];
  for (;;) {
    const std::size_t n = conn.recv_some(buf, sizeof(buf), 5.0);
    if (n == 0) break;
    text.append(buf, n);
  }
  const std::size_t body = text.find("\r\n\r\n");
  if (body == std::string::npos) {
    std::printf("[metrics] scrape failed (no HTTP body)\n");
    return;
  }
  std::size_t series = 0, shown = 0;
  std::printf("\n[metrics] GET /metrics sample:\n");
  for (std::size_t pos = body + 4; pos < text.size();) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    ++series;
    if (line.rfind("pphe_requests_", 0) == 0 ||
        line.rfind("pphe_net_connections", 0) == 0 ||
        line.rfind("pphe_key_bytes", 0) == 0) {
      if (shown < 8) {
        std::printf("  %s\n", line.c_str());
        ++shown;
      }
    }
  }
  std::printf("[metrics] %zu series total\n", series);
}

int run_listen(const CliFlags& flags, Experiment& exp, RnsBackend& backend) {
  HeModelOptions base;
  base.encrypted_weights = false;
  serve::BatchModelSet models(backend, exp.spec(Arch::kCnn1, Activation::kSlaf),
                              base);
  serve::BatchServer server(models, server_options_from_flags(flags));

  serve::net::NetServerOptions nopts;
  // Bare --listen (flag value "true") means an ephemeral port.
  const std::string listen_val = flags.get("listen", "0");
  nopts.port = listen_val == "true"
                   ? 0
                   : static_cast<std::uint16_t>(std::atoi(listen_val.c_str()));
  nopts.key_quota_bytes = static_cast<std::size_t>(
      flags.get_int("key-quota-mb", 1024)) << 20;
  serve::net::NetServer net(server, backend, nopts);

  const double seconds = flags.get_double("serve-seconds", 60.0);
  std::printf("[server] listening on 127.0.0.1:%u for %.0f s — connect with\n"
              "         client_server --connect 127.0.0.1:%u --clients=4\n"
              "         scrape with  curl http://127.0.0.1:%u/metrics\n",
              net.port(), seconds, net.port(), net.port());
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long>(seconds * 1000)));

  const serve::net::NetServerStats ns = net.stats();
  const serve::StatsSnapshot snap = server.snapshot();
  std::printf("[server] shutting down: %llu connections, %llu handshakes, "
              "%llu requests (%llu ok)\n",
              static_cast<unsigned long long>(ns.connections),
              static_cast<unsigned long long>(ns.handshakes),
              static_cast<unsigned long long>(ns.requests),
              static_cast<unsigned long long>(snap.ok));
  net.shutdown();
  server.shutdown();
  return 0;
}

int run_connect(const CliFlags& flags, Experiment& exp,
                const CkksParams& params) {
  const std::string target = flags.get("connect", "");
  const std::size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--connect expects host:port, got '%s'\n",
                 target.c_str());
    return 2;
  }
  const std::string host = target.substr(0, colon);
  const auto port =
      static_cast<std::uint16_t>(std::atoi(target.c_str() + colon + 1));
  const int rc = run_net_load(params, host, port, exp, flags);
  if (flags.has("scrape-metrics")) scrape_metrics(host, port);
  return rc;
}

int run_serve(const CliFlags& flags, Experiment& exp, RnsBackend& backend) {
  // Plain weights for the serving demo: the throughput story is about
  // slot-packed batching; the encrypted-weights ablation lives in the
  // single-shot mode above and the table benches.
  HeModelOptions base;
  base.encrypted_weights = false;
  serve::BatchModelSet models(backend, exp.spec(Arch::kCnn1, Activation::kSlaf),
                              base);
  serve::BatchServer server(models, server_options_from_flags(flags));

  serve::net::NetServer net(server, backend, {});
  std::printf("[server] up on loopback port %u: %zu worker%s, max batch %zu "
              "(model set holds up to %zu), linger %.1f ms, queue capacity "
              "%zu\n",
              net.port(), server.options().workers,
              server.options().workers == 1 ? "" : "s",
              server.options().max_batch, models.max_batch(),
              server.options().linger_ms, server.options().queue_capacity);

  const int rc =
      run_net_load(backend.params(), "127.0.0.1", net.port(), exp, flags);
  scrape_metrics("127.0.0.1", net.port());

  net.shutdown();
  server.shutdown();

  const serve::StatsSnapshot snap = server.snapshot();
  std::printf("\n[server] %llu batches over %llu requests",
              static_cast<unsigned long long>(snap.batches),
              static_cast<unsigned long long>(snap.completed));
  for (const auto& [size, count] : snap.batch_sizes) {
    std::printf("  %zux%llu", size, static_cast<unsigned long long>(count));
  }
  std::printf("  (retries %llu)\n",
              static_cast<unsigned long long>(snap.retries));
  std::printf("[server] queue p99 %.1f ms, eval p99 %.0f ms\n",
              snap.queue_p99_ns * 1e-6, snap.eval_p99_ns * 1e-6);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  ExperimentConfig cfg = ExperimentConfig::from_flags(flags);
  cfg.train_size = static_cast<std::size_t>(flags.get_int("train-size", 2000));

  const bool serve_mode = flags.has("serve");
  const bool listen_mode = flags.has("listen");
  const bool connect_mode = flags.has("connect");
  std::printf(serve_mode || listen_mode || connect_mode
                  ? "== batch serving over loopback TCP ==\n\n"
                  : "== client/server round trip over serialized "
                    "ciphertexts ==\n\n");
  Experiment exp(cfg);
  if (connect_mode) {
    // The network client needs only the test images and the parameter set
    // for the handshake digest — the model lives on the server.
    return run_connect(flags, exp, cfg.ckks_params());
  }
  exp.model(Arch::kCnn1, Activation::kSlaf);  // train (or load from cache)

  RnsBackend backend(cfg.ckks_params());
  if (listen_mode) return run_listen(flags, exp, backend);
  return serve_mode ? run_serve(flags, exp, backend)
                    : run_single(flags, exp, backend);
}
