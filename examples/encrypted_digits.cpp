// Encrypted OCR batch: classify several encrypted digits with CNN1-HE-RNS,
// print an ASCII rendering of each input next to the encrypted prediction,
// and compare sequential vs critical-path latency — the workload of the
// paper's §VI evaluation, visualized.

#include <algorithm>
#include <cstdio>

#include "common/parallel_sim.hpp"
#include "core/pipeline.hpp"

using namespace pphe;

namespace {

void render(const float* img) {
  static const char* kShades = " .:-=+*#%@";
  for (int y = 0; y < 28; y += 2) {
    for (int x = 0; x < 28; ++x) {
      const float v = 0.5f * (img[y * 28 + x] + img[(y + 1) * 28 + x]);
      const int idx = std::clamp(static_cast<int>(v * 9.99f), 0, 9);
      std::putchar(kShades[idx]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  ExperimentConfig cfg = ExperimentConfig::from_flags(flags);
  cfg.train_size = static_cast<std::size_t>(flags.get_int("train-size", 3000));
  const auto count = static_cast<std::size_t>(flags.get_int("count", 4));

  std::printf("== encrypted digit recognition (CNN1-HE-RNS) ==\n");
  Experiment exp(cfg);
  const TrainedModel& model = exp.model(Arch::kCnn1, Activation::kSlaf);
  auto backend = make_backend("rns", cfg.ckks_params());
  HeModelOptions options;
  options.encrypted_weights = true;
  options.rns_branches = 3;
  const HeModel he_model(*backend, compile_model(model), options);

  std::size_t correct = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const float* img = exp.test_set().images.data() + i * 784;
    render(img);
    ParallelSim::global().reset();
    const InferenceResult r =
        he_model.infer(std::vector<float>(img, img + 784));
    const double par = ParallelSim::global().simulate(cfg.workers);
    std::printf("encrypted prediction: %d (label %d) — %.2f s sequential, "
                "%.2f s critical path @%zu workers\n\n",
                r.predicted, exp.test_set().labels[i], r.eval_seconds, par,
                cfg.workers);
    if (r.predicted == exp.test_set().labels[i]) ++correct;
  }
  std::printf("encrypted accuracy on this batch: %zu/%zu "
              "(plaintext model: %.2f%% on the full test set)\n",
              correct, count, static_cast<double>(model.test_accuracy));
  return 0;
}
