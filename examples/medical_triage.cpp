// Domain scenario from the paper's introduction: a hospital outsources
// image triage to an untrusted cloud. Patient scans must never be visible to
// the cloud — nor may the hospital's proprietary model weights (eq. (1):
// both inputs AND weights are encrypted).
//
// We emulate the setting with 28x28 single-channel "scans" (the synthetic
// digit set re-labelled into 10 triage categories): the pipeline — key
// generation at the hospital, encrypted model shipped once, per-patient
// encrypted inference — is exactly what a DICOM-thumbnail triage would use.

#include <cstdio>

#include "core/pipeline.hpp"

using namespace pphe;

namespace {

const char* kTriageLabel[10] = {
    "no finding",        "calcification",   "mass (benign)",
    "mass (suspicious)", "architectural",   "asymmetry",
    "skin lesion",       "foreign object",  "implant",
    "needs re-scan",
};

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  ExperimentConfig cfg = ExperimentConfig::from_flags(flags);
  cfg.train_size = static_cast<std::size_t>(flags.get_int("train-size", 3000));
  const auto patients =
      static_cast<std::size_t>(flags.get_int("patients", 4));

  std::printf("== encrypted medical triage (CNN2, Fig. 4 architecture) ==\n\n");
  std::printf("[hospital] training the triage model on in-house data...\n");
  Experiment exp(cfg);
  const TrainedModel& model = exp.model(Arch::kCnn2, Activation::kSlaf);
  std::printf("[hospital] plaintext test accuracy: %.2f%%\n\n",
              static_cast<double>(model.test_accuracy));

  std::printf("[hospital] generating CKKS-RNS keys and ENCRYPTING the model "
              "weights (the cloud never sees them)...\n");
  auto backend = make_backend("rns", cfg.ckks_params());
  HeModelOptions options;
  options.encrypted_weights = true;
  options.rns_branches = 3;
  const HeModel he_model(*backend, compile_model(model), options);
  std::printf("[hospital] encrypted model shipped to cloud (%zu rotation "
              "keys, %d levels).\n\n",
              he_model.rotation_steps().size(), he_model.levels_used());

  std::size_t agree = 0;
  for (std::size_t p = 0; p < patients; ++p) {
    const float* scan = exp.test_set().images.data() + p * 784;
    const std::vector<float> image(scan, scan + 784);
    std::printf("[patient %zu] scan encrypted at the hospital...\n", p);
    const InferenceResult r = he_model.infer(image);
    std::printf("[cloud]     blind triage in %.2f s (ciphertexts only)\n",
                r.eval_seconds);
    const int plain = [&] {
      const auto logits = eval_spec(compile_model(model), image);
      return static_cast<int>(std::max_element(logits.begin(), logits.end()) -
                              logits.begin());
    }();
    std::printf("[hospital]  decrypted triage: '%s'%s\n\n",
                kTriageLabel[r.predicted],
                r.predicted == plain ? " (matches plaintext model)" : "");
    if (r.predicted == plain) ++agree;
  }
  std::printf("encrypted/plaintext agreement: %zu/%zu\n", agree, patients);
  return agree == patients ? 0 : 1;
}
