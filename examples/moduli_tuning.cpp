// Parameter-tuning walkthrough: how ring degree, chain length and branch
// count trade off security, precision and latency. This is the exploration a
// deployment would run before fixing its Table II equivalent.

#include <cmath>
#include <cstdio>

#include "ckks/security.hpp"
#include "common/table.hpp"
#include "core/pipeline.hpp"

using namespace pphe;

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  ExperimentConfig cfg = ExperimentConfig::from_flags(flags);
  cfg.train_size = static_cast<std::size_t>(flags.get_int("train-size", 2000));
  cfg.he_samples = static_cast<std::size_t>(flags.get_int("samples", 1));

  std::printf("== moduli & branch tuning walkthrough ==\n\n");

  // 1. What the HE standard allows.
  std::printf("step 1: pick N from the security budget (lambda=128):\n");
  TextTable sec({"N", "max log q", "CNN1 fits (needs ~300 bits)?"});
  for (const std::size_t n : {4096u, 8192u, 16384u, 32768u}) {
    const int bound = he_standard_max_log_q(n, 128);
    sec.add_row({std::to_string(n), std::to_string(bound),
                 bound >= 300 ? "yes" : "no"});
  }
  std::printf("%s\n", sec.render().c_str());
  std::printf("-> N = 16384 is the smallest secure ring for the CNN1/CNN2 "
              "chains; the paper's Table II choice.\n\n");

  // 2. Chain-length planner: what Delta survives a given chain length.
  std::printf("step 2: scale the chain to the model depth (CNN1 depth 9):\n");
  TextTable chain({"chain length", "prime bits", "Delta", "precision bits"});
  for (const std::size_t k : {4u, 6u, 8u, 10u, 12u}) {
    const CkksParams p = CkksParams::with_chain_length(k, 1 << 13, 9);
    chain.add_row({std::to_string(k), std::to_string(p.q_bit_sizes[1]),
                   "2^" + TextTable::fixed(std::log2(p.scale), 0),
                   TextTable::fixed(std::log2(p.scale), 0)});
  }
  std::printf("%s\n", chain.render().c_str());

  // 3. Branch count: measured effect on one encrypted inference.
  std::printf("step 3: measure the Fig. 5 branch count on CNN1 (1 sample "
              "each):\n");
  Experiment exp(cfg);
  const ModelSpec spec = exp.spec(Arch::kCnn1, Activation::kSlaf);
  auto backend = make_backend("rns", cfg.ckks_params());
  TextTable branches({"k", "Lat (s)", "Lat-par (s)", "HE=plain (%)"});
  for (const std::size_t k : {1u, 3u, 6u}) {
    HeModelOptions options;
    options.encrypted_weights = false;
    options.rns_branches = k;
    const EncryptedEvalResult r =
        run_encrypted_eval(*backend, spec, options, exp.test_set(), cfg);
    branches.add_row({std::to_string(k),
                      TextTable::fixed(r.eval_latency.avg(), 2),
                      TextTable::fixed(r.parallel_latency.avg(), 2),
                      TextTable::fixed(r.match_rate, 1)});
  }
  std::printf("%s\n", branches.render().c_str());
  std::printf("-> sequential cost grows with k, the critical path does not: "
              "branches buy latency only where cores exist (paper §VI).\n");
  return 0;
}
